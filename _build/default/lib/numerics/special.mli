(** Special mathematical functions needed by the traffic models and the
    large-deviations machinery: gamma-family functions, the error
    function, and Gaussian / Student-t distribution helpers. *)

val log_gamma : float -> float
(** [log_gamma x] is [ln (Gamma x)] for [x > 0], computed with the
    Lanczos approximation (relative error below 1e-13 over the range
    used here). *)

val gamma : float -> float
(** [gamma x] is the Gamma function for [x > 0] (and via reflection for
    negative non-integer [x]). *)

val log_factorial : int -> float
(** [log_factorial n] is [ln n!], exact summation for small [n] and
    [log_gamma] beyond.  [n >= 0]. *)

val erf : float -> float
(** Error function, absolute error below 1.2e-7 (Abramowitz & Stegun
    7.1.26 with symmetry). *)

val erfc : float -> float
(** Complementary error function [1 - erf x]. *)

val normal_cdf : float -> float
(** Standard normal cumulative distribution function. *)

val normal_quantile : float -> float
(** [normal_quantile p] is the inverse standard normal CDF for
    [0 < p < 1] (Acklam's rational approximation, relative error below
    1.15e-9). *)

val student_t_quantile : df:int -> float -> float
(** [student_t_quantile ~df p] is the inverse CDF of Student's t with
    [df > 0] degrees of freedom, via the Cornish–Fisher style expansion
    of Hill (1970).  Used for simulation confidence intervals. *)

val log1p : float -> float
(** Accurate [ln (1 + x)] for small [x]. *)

val expm1 : float -> float
(** Accurate [exp x - 1] for small [x]. *)

val pow : float -> float -> float
(** [pow x y] is [x ** y] with the conventions [pow 0. y = 0.] for
    [y > 0.] and [pow x 0. = 1.]; asserts [x >= 0.]. *)
