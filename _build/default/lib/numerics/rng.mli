(** Deterministic pseudo-random number generation.

    The generator is Xoshiro256++ seeded through SplitMix64, giving a
    period of [2^256 - 1] and excellent statistical quality for
    simulation work.  All simulation code in this project draws its
    randomness through this module so that every experiment is exactly
    reproducible from a seed. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a fresh generator.  Equal seeds produce equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator whose future output equals the
    future output of [t] at the time of the copy. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams
    produced by repeated [split] are statistically independent; use one
    split generator per replication or per source so that changing one
    component's consumption does not perturb the others. *)

val uint64 : t -> int64
(** [uint64 t] is the next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform on the open interval (0, 1).  Neither endpoint
    is ever returned, so it is safe to take logarithms. *)

val float_range : t -> lo:float -> hi:float -> float
(** [float_range t ~lo ~hi] is uniform on (lo, hi). *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform on [0, bound).  [bound] must be
    positive. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val jump_to_substream : t -> int -> t
(** [jump_to_substream t i] is a generator for substream [i] derived
    deterministically from [t]'s current state without advancing [t].
    Distinct [i] give independent streams. *)
