(** Numerical integration. *)

val adaptive_simpson :
  f:(float -> float) -> lo:float -> hi:float -> tol:float -> float
(** [adaptive_simpson ~f ~lo ~hi ~tol] integrates [f] over [lo, hi]
    with recursive interval halving until the Richardson error estimate
    of each panel falls under its share of [tol]. *)

val gauss_legendre_16 : f:(float -> float) -> lo:float -> hi:float -> float
(** Fixed 16-point Gauss–Legendre rule on [lo, hi]; exact for
    polynomials up to degree 31, cheap for smooth integrands. *)

val tail_integral :
  f:(float -> float) -> lo:float -> decay:float -> tol:float -> float
(** [tail_integral ~f ~lo ~decay ~tol] approximates the integral of
    [f] over [lo, infinity) for integrands decaying at least like
    [x^-decay] with [decay > 1], by summing geometric panels until the
    last panel contributes less than [tol]. *)
