(** Radix-2 complex FFT on split real/imaginary float arrays, plus the
    real-input helpers used by the spectral Hurst estimator and the
    Davies–Harte fractional-Gaussian-noise generator. *)

val next_pow2 : int -> int
(** Smallest power of two [>= n] (with [next_pow2 0 = 1]). *)

val is_pow2 : int -> bool

val forward : re:float array -> im:float array -> unit
(** In-place forward DFT of the complex signal [re + i im].  Both
    arrays must have the same power-of-two length.  Convention:
    [X_k = sum_n x_n exp(-2 pi i n k / N)] (no normalisation). *)

val inverse : re:float array -> im:float array -> unit
(** In-place inverse DFT including the [1/N] normalisation, so
    [inverse (forward x) = x] up to rounding. *)

val periodogram : float array -> (float * float) array
(** [periodogram x] is the sequence of pairs [(w_j, I(w_j))] where
    [I(w) = |sum_n (x_n - mean) exp(-i w n)|^2 / (2 pi n)] is the
    periodogram of the mean-centred signal, evaluated at the angular
    frequencies [w_j = 2 pi j / m] of the power-of-two padded grid
    ([m = next_pow2 n], [j = 1 .. m/2]).  Zero padding evaluates the
    exact DTFT of the finite signal at a finer grid, so every returned
    ordinate is a true periodogram value. *)

val convolve : float array -> float array -> float array
(** Linear convolution of two real signals via zero-padded FFT;
    result length is [length a + length b - 1]. *)
