type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64 is used only to expand a small seed into full 256-bit
   state; it guarantees that nearby integer seeds yield unrelated
   Xoshiro states. *)
let splitmix_next state =
  let open Int64 in
  let z = add !state 0x9E3779B97F4A7C15L in
  state := z;
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let uint64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (uint64 t) in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let jump_to_substream t i =
  (* Mix the substream index into a snapshot of the state through
     SplitMix64 so the parent generator is left untouched. *)
  let state = ref (Int64.logxor t.s0 (Int64.mul (Int64.of_int (i + 1)) 0xD1342543DE82EF95L)) in
  let s0 = splitmix_next state in
  let state = ref (Int64.logxor t.s1 s0) in
  let s1 = splitmix_next state in
  let state = ref (Int64.logxor t.s2 s1) in
  let s2 = splitmix_next state in
  let state = ref (Int64.logxor t.s3 s2) in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

(* 2^-53: the spacing of doubles in [1,2); used to map 53 random bits
   onto (0,1). *)
let two_pow_minus53 = 1.1102230246251565e-16

let float t =
  let bits = Int64.shift_right_logical (uint64 t) 11 in
  let u = Int64.to_float bits *. two_pow_minus53 in
  if u <= 0. then two_pow_minus53 else u

let float_range t ~lo ~hi =
  assert (hi > lo);
  lo +. ((hi -. lo) *. float t)

let int t ~bound =
  assert (bound > 0);
  (* Rejection sampling on the high bits avoids modulo bias. *)
  let rec loop () =
    let r = Int64.to_int (Int64.shift_right_logical (uint64 t) 2) in
    let v = r mod bound in
    if r - v > (max_int - bound) + 1 then loop () else v
  in
  loop ()

let bool t = Int64.compare (uint64 t) 0L < 0
