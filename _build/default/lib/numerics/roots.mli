(** Scalar root finding. *)

val bisect : f:(float -> float) -> lo:float -> hi:float -> tol:float -> float
(** [bisect ~f ~lo ~hi ~tol] is a root of [f] in [lo, hi] located to
    within [tol].  Requires [f lo] and [f hi] to have opposite signs
    (or one of them to be zero). *)

val newton :
  f:(float -> float) -> df:(float -> float) -> x0:float -> tol:float -> float
(** Newton iteration from [x0]; falls back to halving the step when the
    derivative is tiny.  Stops when successive iterates differ by less
    than [tol] (or after 100 iterations). *)

val brent : f:(float -> float) -> lo:float -> hi:float -> tol:float -> float
(** Brent–Dekker bracketed root finding: bisection safety with inverse
    quadratic interpolation speed.  Same bracketing requirement as
    {!bisect}. *)
