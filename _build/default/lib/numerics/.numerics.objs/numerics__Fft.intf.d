lib/numerics/fft.mli:
