lib/numerics/float_array.ml: Array Stdlib
