lib/numerics/rng.mli:
