lib/numerics/special.mli:
