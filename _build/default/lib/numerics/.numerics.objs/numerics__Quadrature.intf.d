lib/numerics/quadrature.mli:
