lib/numerics/optimize.mli:
