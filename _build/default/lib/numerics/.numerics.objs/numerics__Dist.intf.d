lib/numerics/dist.mli: Rng
