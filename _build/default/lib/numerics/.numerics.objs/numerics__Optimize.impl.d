lib/numerics/optimize.ml: Float
