lib/numerics/float_array.mli:
