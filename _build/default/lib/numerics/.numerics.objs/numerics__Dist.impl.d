lib/numerics/dist.ml: Array Float Rng Special
