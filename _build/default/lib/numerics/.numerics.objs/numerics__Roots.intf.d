lib/numerics/roots.mli:
