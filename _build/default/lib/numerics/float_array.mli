(** Small utilities over [float array] shared across the project. *)

val sum : float array -> float
(** Kahan-compensated sum. *)

val mean : float array -> float
(** Arithmetic mean; the array must be non-empty. *)

val variance : float array -> float
(** Unbiased sample variance (divides by [n - 1]); needs [n >= 2]. *)

val variance_population : float array -> float
(** Population variance (divides by [n]); needs [n >= 1]. *)

val std : float array -> float
(** Square root of {!variance}. *)

val min : float array -> float
val max : float array -> float

val dot : float array -> float array -> float
(** Inner product of equal-length arrays. *)

val prefix_sums : float array -> float array
(** [prefix_sums x] has length [n + 1] with element [i] holding the sum
    of [x.(0) .. x.(i-1)]. *)

val linspace : lo:float -> hi:float -> n:int -> float array
(** [n >= 2] evenly spaced points from [lo] to [hi] inclusive. *)

val logspace : lo:float -> hi:float -> n:int -> float array
(** [n >= 2] points logarithmically spaced from [lo] to [hi] inclusive;
    requires [0 < lo < hi]. *)

val quantile : float array -> float -> float
(** [quantile x p] for [p] in [0, 1]; linear interpolation between
    order statistics.  Sorts a copy: O(n log n). *)

val map2 : (float -> float -> float) -> float array -> float array -> float array

val normalize_in_place : float array -> unit
(** Scales a non-negative array so its entries sum to 1 (no-op when the
    sum is zero). *)

val aggregate : float array -> block:int -> float array
(** [aggregate x ~block] averages consecutive non-overlapping blocks of
    [block] elements (the incomplete tail block is dropped); this is the
    m-aggregated series used by variance-time Hurst analysis. *)
