(** One-dimensional minimisation, continuous and integer.

    The continuous routines assume a unimodal objective on the given
    bracket.  The integer scan used for the Critical Time Scale search
    makes no unimodality assumption: it scans with a certified stopping
    rule supplied by the caller. *)

val golden_section : f:(float -> float) -> lo:float -> hi:float -> tol:float -> float
(** [golden_section ~f ~lo ~hi ~tol] is the abscissa of the minimum of
    the unimodal [f] on [lo, hi], located to within [tol]. *)

val brent : f:(float -> float) -> lo:float -> hi:float -> tol:float -> float
(** Brent's method (golden section with parabolic interpolation);
    typically far fewer evaluations than pure golden section. *)

type integer_argmin = {
  argmin : int;           (** location of the smallest value found *)
  minimum : float;        (** value at [argmin] *)
  scanned_up_to : int;    (** last index examined *)
}

val integer_argmin :
  f:(int -> float) ->
  lo:int ->
  ?hard_cap:int ->
  stop:(best:float -> at:int -> current:float -> bool) ->
  unit ->
  integer_argmin
(** [integer_argmin ~f ~lo ~stop ()] scans [f] at [lo, lo+1, ...],
    tracking the running minimum, and stops as soon as
    [stop ~best ~at ~current] returns true (or [hard_cap], default
    [2_000_000], is reached).  The stopping predicate receives the best
    value so far, the current index and the current value, so callers
    encode problem-specific certificates (e.g. a lower bound on all
    remaining values exceeding [best]). *)
