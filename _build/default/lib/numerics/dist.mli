(** Random variate generation on top of {!Rng}.

    Every sampler takes the generator explicitly so that callers control
    stream assignment (one substream per source / replication). *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform on (lo, hi). *)

val exponential : Rng.t -> rate:float -> float
(** Exponential with rate [rate > 0] (mean [1/rate]), by inversion. *)

val gaussian : Rng.t -> mean:float -> std:float -> float
(** Normal variate via the Marsaglia polar method.  [std >= 0]. *)

val standard_gaussian : Rng.t -> float
(** Normal(0,1) variate. *)

val poisson : Rng.t -> mean:float -> int
(** Poisson variate.  Multiplication method for small means, and the
    PTRD transformed-rejection algorithm of Hörmann (1993) for
    [mean >= 12], so sampling stays O(1) for the large per-frame cell
    counts used in the simulations.  [mean >= 0]. *)

val pareto : Rng.t -> shape:float -> scale:float -> float
(** Pareto variate on [scale, infinity): P(X > x) = (scale/x)^shape. *)

val bernoulli : Rng.t -> p:float -> bool
(** Coin flip with success probability [p] in [0, 1]. *)

val binomial : Rng.t -> n:int -> p:float -> int
(** Binomial(n, p) by inversion for small [n*p] and by summation
    otherwise; intended for the modest [n] (tens) used here. *)

val geometric : Rng.t -> p:float -> int
(** Number of failures before the first success, [p] in (0, 1]. *)

val gamma : Rng.t -> shape:float -> scale:float -> float
(** Gamma variate with density proportional to
    [x^(shape-1) exp(-x/scale)], by the Marsaglia–Tsang squeeze method
    (with the boosting trick for [shape < 1]). *)

val negative_binomial : Rng.t -> r:float -> p:float -> int
(** Negative binomial: number of failures before the [r]-th success,
    generalised to real [r > 0] via the gamma–Poisson mixture.
    Mean [r(1-p)/p], variance [r(1-p)/p^2].  This is the heavier-than-
    Poisson frame-size marginal used by Heyman & Lakshman for VBR
    video. *)

val negative_binomial_of_moments :
  Rng.t -> mean:float -> variance:float -> int
(** Negative binomial parameterised by moments; requires
    [variance > mean] (over-dispersion). *)

val categorical : Rng.t -> weights:float array -> int
(** Index drawn proportionally to non-negative [weights] (at least one
    strictly positive). *)

val discrete_cdf_sample : Rng.t -> cdf:float array -> int
(** [discrete_cdf_sample rng ~cdf] draws an index [i] with probability
    [cdf.(i) - cdf.(i-1)]; [cdf] must be nondecreasing with final value
    1.  Binary search, O(log n). *)
