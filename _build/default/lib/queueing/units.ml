let buffer_cells_of_msec ~msec ~service_cells_per_frame ~ts =
  assert (msec >= 0.0 && service_cells_per_frame > 0.0 && ts > 0.0);
  msec /. 1000.0 *. service_cells_per_frame /. ts

let buffer_msec_of_cells ~cells ~service_cells_per_frame ~ts =
  assert (cells >= 0.0 && service_cells_per_frame > 0.0 && ts > 0.0);
  cells *. ts /. service_cells_per_frame *. 1000.0

let utilization ~mean_cells_per_frame ~service_cells_per_frame =
  assert (service_cells_per_frame > 0.0);
  mean_cells_per_frame /. service_cells_per_frame

let cells_per_second ~cells_per_frame ~ts =
  assert (ts > 0.0);
  cells_per_frame /. ts

let atm_cell_bits = 53.0 *. 8.0

let mbps_of_cells_per_second cps = cps *. atm_cell_bits /. 1e6
