(** End-to-end multiplexing scenarios: N homogeneous sources of a given
    model into a finite buffer — the experiment unit of the paper's
    simulation section. *)

type t = {
  model : Traffic.Process.t;  (** one source *)
  n : int;  (** number of multiplexed sources *)
  c : float;  (** bandwidth per source, cells/frame *)
  ts : float;  (** frame duration, seconds *)
}

val make : model:Traffic.Process.t -> n:int -> c:float -> ts:float -> t

val service : t -> float
(** Total link capacity [N * c] in cells/frame. *)

val utilization : t -> float

val buffers_of_msec : t -> float array -> float array
(** Convert per-figure buffer axes (msec) into total cells. *)

val clr_curve :
  t ->
  buffers_msec:float array ->
  frames:int ->
  reps:int ->
  seed:int ->
  Stats.Ci.interval array
(** Simulated cell loss rate at each buffer size: [reps] independent
    replications of [frames] frames each, common random numbers across
    buffer sizes within a replication. *)

val bop_curve :
  t ->
  thresholds_msec:float array ->
  frames:int ->
  reps:int ->
  seed:int ->
  Stats.Ci.interval array
(** Simulated infinite-buffer overflow probabilities
    [P(W > x)] at each threshold. *)
