type t = {
  model : Traffic.Process.t;
  n : int;
  c : float;
  ts : float;
}

let make ~model ~n ~c ~ts =
  assert (n >= 1 && c > 0.0 && ts > 0.0);
  { model; n; c; ts }

let service t = float_of_int t.n *. t.c

let utilization t =
  Units.utilization
    ~mean_cells_per_frame:(float_of_int t.n *. t.model.Traffic.Process.mean)
    ~service_cells_per_frame:(service t)

let buffers_of_msec t msec =
  Array.map
    (fun m ->
      Units.buffer_cells_of_msec ~msec:m ~service_cells_per_frame:(service t)
        ~ts:t.ts)
    msec

let aggregate_generator t rng =
  let sources =
    Array.init t.n (fun i ->
        t.model.Traffic.Process.spawn (Numerics.Rng.jump_to_substream rng i))
  in
  fun () ->
    let acc = ref 0.0 in
    for i = 0 to t.n - 1 do
      acc := !acc +. sources.(i) ()
    done;
    !acc

let clr_curve t ~buffers_msec ~frames ~reps ~seed =
  let buffers = buffers_of_msec t buffers_msec in
  Replication.curve_ci ~seed ~reps (fun rng ->
      let next_frame = aggregate_generator t rng in
      let results =
        Fluid_mux.clr_multi ~next_frame ~service:(service t) ~buffers ~frames ()
      in
      Array.map (fun r -> r.Fluid_mux.clr) results)

let bop_curve t ~thresholds_msec ~frames ~reps ~seed =
  let thresholds = buffers_of_msec t thresholds_msec in
  Replication.curve_ci ~seed ~reps (fun rng ->
      let next_frame = aggregate_generator t rng in
      let curve =
        Fluid_mux.workload_tail ~next_frame ~service:(service t) ~thresholds
          ~frames ()
      in
      Array.map snd curve)
