lib/queueing/replication.mli: Numerics Stats
