lib/queueing/units.ml:
