lib/queueing/cell_mux.mli:
