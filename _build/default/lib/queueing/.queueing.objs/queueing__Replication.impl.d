lib/queueing/replication.ml: Array Numerics Stats
