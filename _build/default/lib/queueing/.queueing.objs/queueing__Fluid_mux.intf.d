lib/queueing/fluid_mux.mli:
