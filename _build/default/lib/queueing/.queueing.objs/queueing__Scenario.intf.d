lib/queueing/scenario.mli: Stats Traffic
