lib/queueing/cell_mux.ml: Array Float Stdlib
