lib/queueing/scenario.ml: Array Fluid_mux Numerics Replication Traffic Units
