lib/queueing/units.mli:
