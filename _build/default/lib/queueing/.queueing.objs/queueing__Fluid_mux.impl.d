lib/queueing/fluid_mux.ml: Array Numerics Stdlib
