type 'a run = Numerics.Rng.t -> 'a

let runs ~seed ~reps f =
  assert (reps >= 1);
  let master = Numerics.Rng.create ~seed in
  Array.init reps (fun i -> f (Numerics.Rng.jump_to_substream master i))

let mean_ci ?level ~seed ~reps f =
  let samples = runs ~seed ~reps f in
  Stats.Ci.mean_ci ?level samples

let curve_ci ?level ~seed ~reps f =
  let samples = runs ~seed ~reps f in
  let width = Array.length samples.(0) in
  Array.iter (fun s -> assert (Array.length s = width)) samples;
  Array.init width (fun j ->
      Stats.Ci.mean_ci ?level (Array.map (fun s -> s.(j)) samples))
