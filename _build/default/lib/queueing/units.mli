(** Unit conversions for ATM multiplexer dimensioning.

    Internally everything is counted in cells and frames; the paper's
    figures use buffer sizes expressed as maximum delay in
    milliseconds.  A buffer of [B] cells drained at the link rate
    [C] cells/frame empties in [B / C] frames, i.e.
    [B * T_s / C] seconds. *)

val buffer_cells_of_msec :
  msec:float -> service_cells_per_frame:float -> ts:float -> float
(** Buffer size (cells) whose maximum drain time is [msec]. *)

val buffer_msec_of_cells :
  cells:float -> service_cells_per_frame:float -> ts:float -> float

val utilization : mean_cells_per_frame:float -> service_cells_per_frame:float -> float
(** Offered load over capacity. *)

val cells_per_second : cells_per_frame:float -> ts:float -> float

val mbps_of_cells_per_second : float -> float
(** Line rate in Mbit/s for 53-byte ATM cells. *)
