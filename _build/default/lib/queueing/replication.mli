(** Independent-replication simulation output analysis, mirroring the
    paper's methodology (Section 5.5: 60 replications of half a million
    frames each).  Each replication gets its own RNG substream. *)

type 'a run = Numerics.Rng.t -> 'a
(** One replication: a function of its private generator. *)

val runs : seed:int -> reps:int -> 'a run -> 'a array
(** [runs ~seed ~reps f] evaluates [f] on [reps] independent
    substreams of a master generator. *)

val mean_ci : ?level:float -> seed:int -> reps:int -> float run -> Stats.Ci.interval
(** Replicated scalar estimate with a Student-t confidence interval. *)

val curve_ci :
  ?level:float ->
  seed:int ->
  reps:int ->
  float array run ->
  Stats.Ci.interval array
(** Replicated vector estimate (e.g. CLR at each buffer size):
    per-component confidence intervals.  Every replication must return
    an array of the same length. *)
