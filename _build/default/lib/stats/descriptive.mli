(** Descriptive statistics of samples, including the higher moments
    used to check the Gaussian-marginal property of the video models. *)

type summary = {
  n : int;
  mean : float;
  variance : float;  (** unbiased *)
  std : float;
  skewness : float;  (** sample skewness, 0 for symmetric data *)
  kurtosis_excess : float;  (** 0 for Gaussian data *)
  min : float;
  max : float;
}

val summarize : float array -> summary
(** Full summary; the array must have at least two elements. *)

val covariance : float array -> float array -> float
(** Unbiased sample covariance of two equal-length samples. *)

val correlation : float array -> float array -> float
(** Pearson correlation coefficient. *)

val median : float array -> float
