(** Sample autocovariance / autocorrelation estimation.

    The biased (divide-by-n) estimator is used throughout, as is
    standard for time series: it guarantees a positive semi-definite
    autocovariance sequence. *)

val autocovariance : float array -> max_lag:int -> float array
(** [autocovariance x ~max_lag] has length [max_lag + 1]; element [k]
    is [1/n sum_t (x_t - mean)(x_{t+k} - mean)].  Direct O(n * max_lag)
    computation. *)

val autocorrelation : float array -> max_lag:int -> float array
(** Autocovariance normalised by lag-0; element 0 is 1. *)

val autocorrelation_fft : float array -> max_lag:int -> float array
(** Same estimator computed via FFT (O(n log n)); preferable when
    [max_lag] is large. *)

val partial_autocorrelation : float array -> max_lag:int -> float array
(** Partial ACF via the Durbin–Levinson recursion on the sample ACF;
    element 0 is 1 by convention. *)
