(** Ordinary least squares for the log–log regressions used by the
    Hurst estimators. *)

type fit = {
  slope : float;
  intercept : float;
  r_squared : float;  (** coefficient of determination *)
  stderr_slope : float;  (** standard error of the slope estimate *)
  n : int;
}

val linear : x:float array -> y:float array -> fit
(** [linear ~x ~y] fits [y = intercept + slope * x] by least squares;
    arrays must be equal length with [n >= 3]. *)

val log_log : x:float array -> y:float array -> fit
(** Least squares on [(log x, log y)]; points with non-positive
    coordinates are dropped (at least 3 must survive). *)
