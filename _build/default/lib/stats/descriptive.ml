type summary = {
  n : int;
  mean : float;
  variance : float;
  std : float;
  skewness : float;
  kurtosis_excess : float;
  min : float;
  max : float;
}

let summarize x =
  let n = Array.length x in
  assert (n >= 2);
  let nf = float_of_int n in
  let mean = Numerics.Float_array.mean x in
  let m2 = ref 0.0 and m3 = ref 0.0 and m4 = ref 0.0 in
  for i = 0 to n - 1 do
    let d = x.(i) -. mean in
    let d2 = d *. d in
    m2 := !m2 +. d2;
    m3 := !m3 +. (d2 *. d);
    m4 := !m4 +. (d2 *. d2)
  done;
  let m2 = !m2 /. nf and m3 = !m3 /. nf and m4 = !m4 /. nf in
  let variance = m2 *. nf /. (nf -. 1.0) in
  let std_pop = sqrt m2 in
  let skewness = if m2 > 0.0 then m3 /. (std_pop ** 3.0) else 0.0 in
  let kurtosis_excess = if m2 > 0.0 then (m4 /. (m2 *. m2)) -. 3.0 else 0.0 in
  {
    n;
    mean;
    variance;
    std = sqrt variance;
    skewness;
    kurtosis_excess;
    min = Numerics.Float_array.min x;
    max = Numerics.Float_array.max x;
  }

let covariance x y =
  let n = Array.length x in
  assert (Array.length y = n && n >= 2);
  let mx = Numerics.Float_array.mean x and my = Numerics.Float_array.mean y in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. ((x.(i) -. mx) *. (y.(i) -. my))
  done;
  !acc /. float_of_int (n - 1)

let correlation x y =
  covariance x y
  /. sqrt (Numerics.Float_array.variance x *. Numerics.Float_array.variance y)

let median x = Numerics.Float_array.quantile x 0.5
