lib/stats/acf.mli:
