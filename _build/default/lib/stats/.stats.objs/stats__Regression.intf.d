lib/stats/regression.mli:
