lib/stats/ci.mli:
