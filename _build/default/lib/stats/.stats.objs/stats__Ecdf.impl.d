lib/stats/ecdf.ml: Array Numerics
