lib/stats/ci.ml: Array Float Numerics Stdlib
