lib/stats/hurst.mli:
