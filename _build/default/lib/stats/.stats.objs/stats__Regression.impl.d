lib/stats/regression.ml: Array List Numerics Stdlib
