lib/stats/descriptive.mli:
