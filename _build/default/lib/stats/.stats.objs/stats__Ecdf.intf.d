lib/stats/ecdf.mli:
