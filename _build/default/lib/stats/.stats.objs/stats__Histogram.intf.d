lib/stats/histogram.mli:
