lib/stats/acf.ml: Array Numerics
