lib/stats/hurst.ml: Array Float List Numerics Regression Stdlib
