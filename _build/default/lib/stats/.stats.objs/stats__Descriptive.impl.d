lib/stats/descriptive.ml: Array Numerics
