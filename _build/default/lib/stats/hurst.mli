(** Hurst-parameter estimation.

    These estimators reproduce the methodology used in the LRD-video
    literature (Beran et al., Leland et al.): the paper's premise is
    that VBR video traces measure H > 0.5, so we verify that our model
    generators actually produce the Hurst parameters their analytic
    forms promise. *)

type estimate = {
  h : float;           (** estimated Hurst parameter *)
  r_squared : float;   (** quality of the underlying log–log fit *)
  points : (float * float) array;
      (** the (scale, statistic) pairs that were regressed, for
          diagnostic plotting *)
}

val rescaled_range : ?min_block:int -> ?num_scales:int -> float array -> estimate
(** Classical R/S analysis: the series is cut into blocks of
    geometrically increasing size; within each block the rescaled range
    R/S is computed and averaged; H is the slope of
    [log E(R/S)] vs [log block].  Default blocks from [min_block = 8]
    up to n/4 over [num_scales = 12] scales. *)

val aggregated_variance : ?min_block:int -> ?num_scales:int -> float array -> estimate
(** Variance-time method: the variance of the m-aggregated series
    scales as [m^(2H-2)]; H = 1 + slope/2. *)

val periodogram : ?fraction:float -> float array -> estimate
(** Spectral method: for an LRD series the spectral density behaves as
    [f^(1-2H)] near zero, so the slope of the log–log periodogram over
    the lowest [fraction] (default 0.1) of frequencies gives
    H = (1 - slope)/2. *)

val variance_of_sums : ?min_block:int -> ?num_scales:int -> float array -> estimate
(** Variance growth of partial sums: Var(sum of m terms) ~ m^(2H);
    H = slope/2.  This is the statistic the Critical Time Scale theory
    is built on (paper's V(m)). *)

val local_whittle : ?fraction:float -> float array -> estimate
(** Local Whittle (Gaussian semiparametric) estimator of Robinson
    (1995): minimises
    [R(H) = log( (1/m) sum_j w_j^(2H-1) I(w_j) ) - (2H-1) (1/m) sum_j log w_j]
    over the lowest [fraction] (default 0.1) of Fourier frequencies.
    More efficient than the periodogram regression; the reported
    [points] are the periodogram ordinates used and [r_squared] is set
    to 1 - R''-based curvature is not exposed. *)
