(** Confidence intervals for simulation output analysis. *)

type interval = {
  point : float;   (** point estimate (sample mean) *)
  half_width : float;
  level : float;   (** confidence level, e.g. 0.95 *)
}

val mean_ci : ?level:float -> float array -> interval
(** Student-t interval for the mean of i.i.d. replications (default
    95%).  Needs at least two observations. *)

val batch_means_ci : ?level:float -> ?batches:int -> float array -> interval
(** Batch-means interval for the mean of one long {e correlated} run
    (the standard alternative to the paper's independent-replication
    design): the series is cut into [batches] (default 20) contiguous
    batches whose means are treated as approximately independent.
    Correct coverage requires batches much longer than the correlation
    length — for LRD series the interval remains optimistic, which is
    itself the phenomenon the paper discusses.  Needs at least
    [2 * batches] observations. *)

val contains : interval -> float -> bool

val relative_half_width : interval -> float
(** [half_width / |point|]; infinity when the point estimate is 0. *)

val log10_interval : interval -> float * float
(** The interval endpoints mapped through [log10], clipping the lower
    endpoint at a tiny positive value — convenient for loss-rate plots
    on log axes. *)
