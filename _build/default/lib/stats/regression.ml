type fit = {
  slope : float;
  intercept : float;
  r_squared : float;
  stderr_slope : float;
  n : int;
}

let linear ~x ~y =
  let n = Array.length x in
  assert (Array.length y = n && n >= 3);
  let nf = float_of_int n in
  let mx = Numerics.Float_array.mean x and my = Numerics.Float_array.mean y in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = x.(i) -. mx and dy = y.(i) -. my in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  assert (!sxx > 0.0);
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let ss_res = !syy -. (slope *. !sxy) in
  let r_squared = if !syy > 0.0 then 1.0 -. (ss_res /. !syy) else 1.0 in
  let stderr_slope =
    if n > 2 then sqrt (Stdlib.max 0.0 ss_res /. ((nf -. 2.0) *. !sxx)) else 0.0
  in
  { slope; intercept; r_squared; stderr_slope; n }

let log_log ~x ~y =
  let pairs =
    Array.to_list (Array.mapi (fun i xi -> (xi, y.(i))) x)
    |> List.filter (fun (xi, yi) -> xi > 0.0 && yi > 0.0)
  in
  assert (List.length pairs >= 3);
  let lx = Array.of_list (List.map (fun (xi, _) -> log xi) pairs) in
  let ly = Array.of_list (List.map (fun (_, yi) -> log yi) pairs) in
  linear ~x:lx ~y:ly
