(** Empirical distribution functions and tail estimation, used to turn
    simulated workload samples into buffer-overflow-probability
    curves. *)

type t

val of_samples : float array -> t
(** Builds the ECDF of the sample (copies and sorts, O(n log n)). *)

val cdf : t -> float -> float
(** [cdf t x] is the fraction of samples [<= x]. *)

val tail : t -> float -> float
(** [tail t x] is [P(X > x)], the empirical complementary CDF. *)

val quantile : t -> float -> float
(** [quantile t p] for [p] in [0, 1]. *)

val size : t -> int

val tail_curve : t -> thresholds:float array -> (float * float) array
(** [(x, P(X > x))] pairs for each threshold, in one pass over the
    sorted data. *)
