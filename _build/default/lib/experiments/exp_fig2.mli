(** Fig. 2: sample paths of the aggregate of N = 10 sources — Z^0.7
    against the DAR(1) matched to its lag-1 correlation.  The LRD model
    shows the burst-within-burst structure; the DAR(1) tracks only the
    fast time scale.  We additionally report sample statistics and the
    estimated Hurst parameters of both paths, quantifying what the
    paper shows visually. *)

type summary = {
  label : string;
  mean : float;
  std : float;
  hurst_rs : float;  (** rescaled-range estimate *)
  hurst_var : float;  (** aggregated-variance estimate *)
}

val figure : unit -> Common.figure
val summaries : unit -> summary list
val run : unit -> unit
