(** Minimal terminal line plots for the figure series, so the bench
    output shows curve {e shapes} (orderings, crossovers) and not just
    numbers.  Pure text, no dependencies. *)

val render :
  ?width:int ->
  ?height:int ->
  ?logx:bool ->
  series:(string * (float * float) array) list ->
  xlabel:string ->
  ylabel:string ->
  unit ->
  string
(** [render ~series ~xlabel ~ylabel ()] draws all series on one canvas
    (default 72x20).  Each series is assigned a marker character
    (a, b, c, ...); overlapping points show the later series' marker.
    Non-finite y values are skipped.  Returns the multi-line string. *)

val render_figure : ?width:int -> ?height:int -> ?logx:bool -> Common.figure -> string
(** Render a {!Common.figure}'s series. *)

val emit : ?logx:bool -> Common.figure -> unit
(** {!Common.emit} (table + CSV) followed by a rendered plot on
    stdout. *)
