(** Fig. 6: efficacy of Markov models over the practical buffer range
    (N = 30, c = 538).  (a) Z^0.975 against its DAR(1), DAR(2), DAR(3)
    fits and against L: even DAR(1) out-predicts the exact-LRD L, and
    DAR(p) converges to Z as p grows.  (b) Same for Z^0.7. *)

val figure : a:float -> with_l:bool -> id:string -> Common.figure
val figure_a : unit -> Common.figure
val figure_b : unit -> Common.figure
val run : unit -> unit
