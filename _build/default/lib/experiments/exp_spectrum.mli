(** Section 6.2 experiment: the frequency-domain view of the CTS.

    Plots the power spectral densities of the Z^a family (identical
    low-frequency behaviour, different mid/high frequencies) and the
    buffer-induced cutoff frequency [w_c = pi / m*]: the spectral mass
    below [w_c] — which contains the entire LRD signature — does not
    influence the loss estimate at practical buffer sizes. *)

val figure_psd : unit -> Common.figure

val figure_cutoff : unit -> Common.figure
(** Cutoff frequency vs buffer size for Z^a (log-scaled buffer). *)

val lrd_power_ignored : a:float -> buffer_msec:float -> float
(** Fraction of the source variance living below the cutoff frequency
    at the given buffer — i.e. how much spectral mass the loss estimate
    is entitled to ignore. *)

val run : unit -> unit
