(** Section 6.1 experiment: effect of the frame-size marginal.

    The paper argues its conclusions survive heavier-tailed marginals
    because, once bandwidth is adjusted to restore the operating point,
    buffer behaviour differences are again driven by correlations.  We
    test this directly by simulating DAR(1) multiplexers with Gaussian,
    negative-binomial (Heyman–Lakshman) and gamma marginals of equal
    mean and variance and equal correlation structure. *)

val figure_clr : unit -> Common.figure
(** Simulated CLR vs buffer for the three marginals (N=30, c=538). *)

val figure_cts_invariance : unit -> Common.figure
(** The CTS analysis depends on the marginal only through (mu, sigma^2)
    — shown by construction, plotted for the record. *)

val run : unit -> unit
