(** Fig. 4: the Critical Time Scale m*_b against total buffer size
    (msec), N = 100 sources, c = 526 cells/frame per source.
    (a) V^v: same short-term correlations give the same CTS despite
    different LRD weight; (b) Z^a: stronger short-term correlations
    give markedly larger CTS despite identical long-term behaviour. *)

val figure_a : unit -> Common.figure
val figure_b : unit -> Common.figure
val run : unit -> unit
