let buffers_msec = Exp_fig8.buffers_msec

let sim ?frames_scale label process =
  Common.clr_sim_series ?frames_scale ~label process ~n:Common.n_main
    ~c:Common.c_main ~buffers_msec

let panel ~id ~a ~with_l =
  let series =
    sim (Printf.sprintf "Z^%g" a) (Traffic.Models.z ~a).Traffic.Models.process
    :: List.map
         (fun p ->
           (* DAR generation is ~100x cheaper than the event-driven LRD
              models, so push it 10x deeper into the tail. *)
           sim ~frames_scale:10
             (Printf.sprintf "DAR(%d)" p)
             (Traffic.Models.s ~a ~p))
         [ 1; 2; 3 ]
    @ (if with_l then [ sim "L" (Traffic.Models.l ()) ] else [])
  in
  {
    Common.id = id;
    title =
      Printf.sprintf "Simulated CLR: Z^%g vs DAR(p)%s (N=30, c=538)" a
        (if with_l then " vs L" else "");
    xlabel = "buffer msec";
    ylabel = "log10 CLR";
    series;
  }

let figure_a () = panel ~id:"fig9a" ~a:0.975 ~with_l:true
let figure_b () = panel ~id:"fig9b" ~a:0.7 ~with_l:false

let run () =
  Ascii_plot.emit (figure_a ());
  Ascii_plot.emit (figure_b ())
