let figure ~a ~with_l ~id =
  let buffers_msec = Common.practical_buffers_msec in
  let bop label process =
    Common.bop_series ~label process ~n:Common.n_main ~c:Common.c_main
      ~buffers_msec
  in
  let z = bop (Printf.sprintf "Z^%g" a) (Traffic.Models.z ~a).Traffic.Models.process in
  let dars =
    List.map
      (fun p -> bop (Printf.sprintf "DAR(%d)" p) (Traffic.Models.s ~a ~p))
      [ 1; 2; 3 ]
  in
  let l = if with_l then [ bop "L" (Traffic.Models.l ()) ] else [] in
  {
    Common.id = id;
    title =
      Printf.sprintf "B-R BOP: Z^%g vs DAR(p)%s (N=30, c=538)" a
        (if with_l then " vs L" else "");
    xlabel = "buffer msec";
    ylabel = "log10 P(W > B)";
    series = (z :: dars) @ l;
  }

let figure_a () = figure ~a:0.975 ~with_l:true ~id:"fig6a"
let figure_b () = figure ~a:0.7 ~with_l:false ~id:"fig6b"

let run () =
  Ascii_plot.emit (figure_a ());
  Ascii_plot.emit (figure_b ())
