(** Fig. 10: accuracy of the two large-buffer asymptotics.  For the
    DAR(1) model matched to Z^0.975 (N = 30, c = 538), compares the
    Bahadur–Rao asymptotic, the Large-N asymptotic, and the simulated
    finite-buffer CLR.  The paper's observations to verify: the three
    curves are parallel; B-R is roughly one order of magnitude below
    Large-N; and both infinite-buffer asymptotics overshoot the
    finite-buffer CLR by about two orders of magnitude. *)

val figure : unit -> Common.figure
val run : unit -> unit
