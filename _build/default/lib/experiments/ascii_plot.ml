let markers = "abcdefghijklmnopqrstuvwxyz"

let finite (_, y) = Float.is_finite y

let render ?(width = 72) ?(height = 20) ?(logx = false) ~series ~xlabel ~ylabel
    () =
  assert (width >= 16 && height >= 4);
  let all_points =
    List.concat_map (fun (_, pts) -> List.filter finite (Array.to_list pts)) series
  in
  if all_points = [] then "(no finite points to plot)\n"
  else begin
    let xs = List.map fst all_points and ys = List.map snd all_points in
    let tx x = if logx then log x else x in
    let xmin = List.fold_left Stdlib.min infinity xs in
    let xmax = List.fold_left Stdlib.max neg_infinity xs in
    let ymin = List.fold_left Stdlib.min infinity ys in
    let ymax = List.fold_left Stdlib.max neg_infinity ys in
    if logx then assert (xmin > 0.0);
    let xspan = Stdlib.max 1e-12 (tx xmax -. tx xmin) in
    let yspan = Stdlib.max 1e-12 (ymax -. ymin) in
    let canvas = Array.make_matrix height width ' ' in
    List.iteri
      (fun si (_, pts) ->
        let marker = markers.[si mod String.length markers] in
        Array.iter
          (fun ((x, y) as pt) ->
            if finite pt then begin
              let col =
                int_of_float
                  (Float.round
                     ((tx x -. tx xmin) /. xspan *. float_of_int (width - 1)))
              in
              let row =
                int_of_float
                  (Float.round ((ymax -. y) /. yspan *. float_of_int (height - 1)))
              in
              canvas.(row).(col) <- marker
            end)
          pts)
      series;
    let buffer = Buffer.create (height * (width + 12)) in
    Buffer.add_string buffer
      (Printf.sprintf "%s (top %.3g, bottom %.3g)\n" ylabel ymax ymin);
    Array.iter
      (fun row ->
        Buffer.add_string buffer "  |";
        Array.iter (Buffer.add_char buffer) row;
        Buffer.add_char buffer '\n')
      canvas;
    Buffer.add_string buffer "  +";
    Buffer.add_string buffer (String.make width '-');
    Buffer.add_char buffer '\n';
    Buffer.add_string buffer
      (Printf.sprintf "   %s: %.3g .. %.3g%s\n" xlabel xmin xmax
         (if logx then " (log axis)" else ""));
    List.iteri
      (fun si (label, _) ->
        Buffer.add_string buffer
          (Printf.sprintf "   %c = %s\n"
             markers.[si mod String.length markers]
             label))
      series;
    Buffer.contents buffer
  end

let render_figure ?width ?height ?logx (fig : Common.figure) =
  render ?width ?height ?logx
    ~series:
      (List.map (fun s -> (s.Common.label, s.Common.points)) fig.Common.series)
    ~xlabel:fig.Common.xlabel ~ylabel:fig.Common.ylabel ()

let emit ?logx fig =
  Common.emit fig;
  print_string (render_figure ?logx fig)
