(** Table 1: derived model parameters of V^v, Z^a, S and L, recomputed
    from first principles (nothing hard-coded). *)

type row = {
  model : string;
  v : float option;
  alpha : float option;
  a : string;  (** DAR(1) lag-1 value(s), formatted *)
  lambda : float option;  (** cells/sec *)
  t0_msec : float option;
  m : int option;
}

val rows : unit -> row list

type dar_fit_row = {
  target : string;  (** which Z^a the DAR(p) was fitted to *)
  p : int;
  rho : float;
  weights : float array;
}

val dar_fits : unit -> dar_fit_row list

val run : unit -> unit
