(** Fig. 9: simulated finite-buffer CLR of Z^a against its matched
    DAR(p) models and L (N = 30, c = 538) — the simulation counterpart
    of Fig. 6, showing that the cheap Markov models track the LRD
    traffic's loss over the practical range. *)

val figure_a : unit -> Common.figure
val figure_b : unit -> Common.figure
val run : unit -> unit
