(** Beyond-the-paper experiment: the Critical Time Scale of an
    MPEG-style GOP source (the future work announced in Section 6.2).

    The GOP pattern injects strong periodic correlation at lags that
    are multiples of the GOP length, on top of a slowly decaying
    scene-activity component.  The questions answered here: how does
    the CTS grow for such a source, and does the B-R loss estimate
    still track a matched DAR(p)? *)

val figure_acf : unit -> Common.figure
val figure_cts : unit -> Common.figure
val figure_bop : unit -> Common.figure
val run : unit -> unit
