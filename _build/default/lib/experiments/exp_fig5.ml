let figure_a () =
  {
    Common.id = "fig5a";
    title = "B-R BOP: V^v (N=30, c=538)";
    xlabel = "buffer msec";
    ylabel = "log10 P(W > B)";
    series =
      List.map
        (fun v ->
          Common.bop_series
            ~label:(Printf.sprintf "V^%g" v)
            (Traffic.Models.v ~v).Traffic.Models.process ~n:Common.n_main
            ~c:Common.c_main ~buffers_msec:Common.practical_buffers_msec)
        Traffic.Models.v_values;
  }

let figure_b () =
  {
    Common.id = "fig5b";
    title = "B-R BOP: Z^a (N=30, c=538)";
    xlabel = "buffer msec";
    ylabel = "log10 P(W > B)";
    series =
      List.map
        (fun a ->
          Common.bop_series
            ~label:(Printf.sprintf "Z^%g" a)
            (Traffic.Models.z ~a).Traffic.Models.process ~n:Common.n_main
            ~c:Common.c_main ~buffers_msec:Common.practical_buffers_msec)
        Traffic.Models.z_values;
  }

let run () =
  Ascii_plot.emit (figure_a ());
  Ascii_plot.emit (figure_b ())
