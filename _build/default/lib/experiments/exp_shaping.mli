(** Extension experiment: smoothing/shaping as a traffic-engineering
    knob, quantified with the CTS machinery.

    A source shaper that averages a window of [w] frames adds
    [(w - 1) * 40] msec of delay once, at the source, but strips
    short-term variability from what every downstream hop sees.  Since
    the paper shows loss is governed by exactly those short-term
    correlations, shaping buys loss improvements at every hop — while
    leaving the (irrelevant) LRD tail untouched.

    The scenario uses the paper's end-to-end budget of ~200 msec for
    real-time video over [hops = 3] nodes: the budget not consumed by
    source shaping is split evenly into per-hop buffers, and the figure
    reports the per-hop B-R loss estimate as the window grows — the
    real engineering trade-off. *)

val figure_fixed_budget : unit -> Common.figure
(** x = shaper window (frames); y = per-hop log10 BOP with the
    remaining end-to-end budget spent on buffers, per model. *)

val run : unit -> unit
