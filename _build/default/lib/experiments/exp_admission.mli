(** The paper's Section 5.4 remark made into an experiment: translate
    BOP differences into admissible-connection counts.

    "This difference becomes negligible when the loss rate is
    translated to the number of admissible VBR video connections, which
    is why the DAR(1) model provides accurate prediction of the number
    of admissible connections for LRD traces."  Each series gives the
    max connections on a fixed link vs buffer size, per model. *)

val figure : target_clr:float -> Common.figure

val max_count_gap : target_clr:float -> int
(** Largest |N_model - N_Z| over DAR(p) models and practical buffers. *)

val run : unit -> unit
