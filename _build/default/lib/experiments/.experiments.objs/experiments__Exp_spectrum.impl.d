lib/experiments/exp_spectrum.ml: Array Ascii_plot Common Core List Numerics Printf Traffic
