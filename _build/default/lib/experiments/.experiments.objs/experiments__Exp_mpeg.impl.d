lib/experiments/exp_mpeg.ml: Array Ascii_plot Common Traffic
