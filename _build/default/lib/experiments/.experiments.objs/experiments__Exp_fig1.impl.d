lib/experiments/exp_fig1.ml: Array Ascii_plot Common List Printf Traffic
