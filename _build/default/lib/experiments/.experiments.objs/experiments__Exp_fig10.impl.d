lib/experiments/exp_fig10.ml: Array Ascii_plot Common Core Exp_fig8 Traffic
