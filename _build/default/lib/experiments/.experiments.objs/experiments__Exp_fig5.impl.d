lib/experiments/exp_fig5.ml: Ascii_plot Common List Printf Traffic
