lib/experiments/exp_shaping.mli: Common
