lib/experiments/common.ml: Array Core Filename Float List Numerics Printf Queueing Stats String Sys Traffic
