lib/experiments/exp_marginals.mli: Common
