lib/experiments/exp_fig8.ml: Ascii_plot Common List Printf Traffic
