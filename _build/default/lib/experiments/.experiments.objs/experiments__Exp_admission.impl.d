lib/experiments/exp_admission.ml: Array Ascii_plot Common Core List Printf Queueing Stdlib Traffic
