lib/experiments/exp_table1.ml: Array Common Filename List Printf String Sys Traffic
