lib/experiments/exp_fig7.ml: Array Ascii_plot Common Float List Printf Traffic
