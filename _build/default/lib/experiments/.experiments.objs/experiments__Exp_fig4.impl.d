lib/experiments/exp_fig4.ml: Ascii_plot Common List Printf Traffic
