lib/experiments/exp_marginals.ml: Ascii_plot Common List Printf Traffic
