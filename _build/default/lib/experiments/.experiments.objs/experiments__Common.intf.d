lib/experiments/common.mli: Core Stats Traffic
