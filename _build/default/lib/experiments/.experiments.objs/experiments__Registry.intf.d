lib/experiments/registry.mli:
