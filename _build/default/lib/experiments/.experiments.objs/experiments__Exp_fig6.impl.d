lib/experiments/exp_fig6.ml: Ascii_plot Common List Printf Traffic
