lib/experiments/exp_mpeg.mli: Common
