lib/experiments/exp_admission.mli: Common
