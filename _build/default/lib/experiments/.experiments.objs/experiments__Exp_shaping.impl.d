lib/experiments/exp_shaping.ml: Array Ascii_plot Common Core List Printf Traffic
