lib/experiments/exp_spectrum.mli: Common
