lib/experiments/ascii_plot.ml: Array Buffer Common Float List Printf Stdlib String
