lib/experiments/exp_fig9.ml: Ascii_plot Common Exp_fig8 List Printf Traffic
