lib/experiments/exp_ablations.ml: Array Ascii_plot Common Core Numerics Option Printf Queueing Stdlib Traffic
