lib/experiments/exp_fig2.ml: Array Common List Numerics Printf Stats Traffic
