lib/experiments/exp_fig3.ml: Array Ascii_plot Common Float List Numerics Printf Traffic
