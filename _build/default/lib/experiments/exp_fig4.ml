let buffers_msec =
  [| 0.5; 1.0; 1.5; 2.0; 3.0; 4.0; 5.0; 6.0; 8.0; 10.0; 12.0; 15.0; 18.0;
     21.0; 24.0; 27.0; 30.0 |]

let figure_a () =
  {
    Common.id = "fig4a";
    title = "CTS m*_b vs buffer: V^v (N=100, c=526)";
    xlabel = "buffer msec";
    ylabel = "m*_b";
    series =
      List.map
        (fun v ->
          Common.cts_series
            ~label:(Printf.sprintf "V^%g" v)
            (Traffic.Models.v ~v).Traffic.Models.process ~n:Common.n_fig4
            ~c:Common.c_fig4 ~buffers_msec)
        Traffic.Models.v_values;
  }

let figure_b () =
  {
    Common.id = "fig4b";
    title = "CTS m*_b vs buffer: Z^a (N=100, c=526)";
    xlabel = "buffer msec";
    ylabel = "m*_b";
    series =
      List.map
        (fun a ->
          Common.cts_series
            ~label:(Printf.sprintf "Z^%g" a)
            (Traffic.Models.z ~a).Traffic.Models.process ~n:Common.n_fig4
            ~c:Common.c_fig4 ~buffers_msec)
        Traffic.Models.z_values;
  }

let run () =
  Ascii_plot.emit (figure_a ());
  Ascii_plot.emit (figure_b ())
