(** Fig. 8: simulated finite-buffer cell loss rates (fluid multiplexer,
    deterministic smoothing), N = 30, c = 538.  (a) V^v, (b) Z^a.
    Verifies the analytic ordering of Fig. 5 by simulation, including
    the common zero-buffer CLR forced by the shared marginal.

    Scale is controlled by CTS_FRAMES / CTS_REPS; the paper used 60
    replications of 500k frames. *)

val buffers_msec : float array

val figure_a : unit -> Common.figure
val figure_b : unit -> Common.figure
val run : unit -> unit
