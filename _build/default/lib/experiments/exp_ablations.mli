(** Ablation experiments beyond the paper's figures, exercising the
    design choices called out in DESIGN.md.

    - {b weibull}: the closed-form Weibull approximation (paper eq. 6)
      against the numerically minimised Bahadur–Rao machinery, on pure
      fGn (g = 1) and on the FBNDP model L — validates the Appendix
      derivation and shows where the large-[m*] approximation bends.
    - {b cts_closed_form}: the Appendix CTS slope
      [m* = H b / ((1-H)(c-mu))] against the exact integer minimiser.
    - {b fluid_vs_cell}: fluid multiplexer CLR against the exact
      cell-level G/D/1/B simulator on a common scenario.
    - {b marginal}: CTS sensitivity to the marginal's variance
      (Section 6.1 discussion) — doubling sigma^2 at fixed correlations
      moves the operating point but not the smallness of the CTS. *)

val figure_weibull : unit -> Common.figure
val figure_cts_closed_form : unit -> Common.figure
val fluid_vs_cell : unit -> (float * float * float) array
(** (buffer msec, fluid CLR, cell-level CLR) triples. *)

val figure_marginal : unit -> Common.figure
val run : unit -> unit
