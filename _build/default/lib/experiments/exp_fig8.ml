(* A coarser buffer grid than the analytic figures: each point is paid
   for in simulation time.  The grid is dense at small buffers where
   laptop-scale runs still observe losses; the deep-tail points light up
   at CTS_FRAMES/CTS_REPS closer to the paper's 500k x 60. *)
let buffers_msec =
  [| 0.0; 0.25; 0.5; 1.0; 1.5; 2.0; 3.0; 5.0; 8.0; 12.0; 20.0; 30.0 |]

let sim label process =
  Common.clr_sim_series ~label process ~n:Common.n_main ~c:Common.c_main
    ~buffers_msec

let figure_a () =
  {
    Common.id = "fig8a";
    title = "Simulated CLR: V^v (N=30, c=538)";
    xlabel = "buffer msec";
    ylabel = "log10 CLR";
    series =
      List.map
        (fun v ->
          sim (Printf.sprintf "V^%g" v) (Traffic.Models.v ~v).Traffic.Models.process)
        Traffic.Models.v_values;
  }

let figure_b () =
  {
    Common.id = "fig8b";
    title = "Simulated CLR: Z^a (N=30, c=538)";
    xlabel = "buffer msec";
    ylabel = "log10 CLR";
    series =
      List.map
        (fun a ->
          sim (Printf.sprintf "Z^%g" a) (Traffic.Models.z ~a).Traffic.Models.process)
        Traffic.Models.z_values;
  }

let run () =
  Ascii_plot.emit (figure_a ());
  Ascii_plot.emit (figure_b ())
