let buffers_msec = Exp_fig8.buffers_msec

let figure () =
  let model = Traffic.Models.s ~a:0.975 ~p:1 in
  let vg = Common.variance_growth model in
  let analytic evaluate label =
    Common.series ~label
      (Array.map
         (fun msec ->
           let b =
             Common.buffer_cells_per_source ~msec ~n:Common.n_main
               ~c:Common.c_main
           in
           (msec, evaluate ~b))
         buffers_msec)
  in
  let br =
    analytic
      (fun ~b ->
        (Core.Bahadur_rao.evaluate vg ~mu:Common.mu ~c:Common.c_main ~b
           ~n:Common.n_main)
          .Core.Bahadur_rao.log10_bop)
      "Bahadur-Rao"
  in
  let ln =
    analytic
      (fun ~b ->
        (Core.Large_n.evaluate vg ~mu:Common.mu ~c:Common.c_main ~b
           ~n:Common.n_main)
          .Core.Large_n.log10_bop)
      "Large-N"
  in
  let sim =
    Common.clr_sim_series ~frames_scale:10 ~label:"simulated CLR" model
      ~n:Common.n_main ~c:Common.c_main ~buffers_msec
  in
  {
    Common.id = "fig10";
    title = "Asymptotics vs simulation: DAR(1) matched to Z^0.975 (N=30, c=538)";
    xlabel = "buffer msec";
    ylabel = "log10 probability";
    series = [ br; ln; sim ];
  }

let run () = Ascii_plot.emit (figure ())
