let mpeg () = Traffic.Mpeg.create ~mean:Common.mu ()

(* Keep the comparison at the paper's operating point: same mean, and a
   bandwidth giving the usual ~93% utilisation. *)
let c = Common.c_main
let n = Common.n_main

let figure_acf () =
  let source = Traffic.Mpeg.process (mpeg ()) in
  let lags = Array.init 40 (fun i -> i + 1) in
  {
    Common.id = "mpeg_acf";
    title = "MPEG GOP source: ACF ripples at the GOP period (12 frames)";
    xlabel = "lag k";
    ylabel = "r(k)";
    series =
      [
        Common.acf_series ~label:"MPEG" source ~lags;
        Common.acf_series ~label:"Z^0.975" (Traffic.Models.z ~a:0.975).Traffic.Models.process ~lags;
      ];
  }

let figure_cts () =
  let source = Traffic.Mpeg.process (mpeg ()) in
  {
    Common.id = "mpeg_cts";
    title = "CTS of the MPEG source vs the paper's models (N=30, c=538)";
    xlabel = "buffer msec";
    ylabel = "m*_b";
    series =
      [
        Common.cts_series ~label:"MPEG" source ~n ~c
          ~buffers_msec:Common.practical_buffers_msec;
        Common.cts_series ~label:"Z^0.975"
          (Traffic.Models.z ~a:0.975).Traffic.Models.process ~n ~c
          ~buffers_msec:Common.practical_buffers_msec;
      ];
  }

(* DAR(p) cannot represent the MPEG ACF: the interleaving of small B
   frames right after large I frames makes several short-lag
   correlations negative, while DAR correlations are non-negative by
   construction (mixture weights).  So the Markov comparators here are
   (i) a DAR(1) capturing only the across-GOP (scene) decay - what a
   model fitted to GOP-aggregated measurements would see - and (ii) the
   activity process itself, i.e. the source behind a GOP-smoothing
   shaper. *)
let figure_bop () =
  let model = mpeg () in
  let source = Traffic.Mpeg.process model in
  let scene_rho =
    (* Across-GOP decay: per-frame equivalent of the lag-12 ratio. *)
    (Traffic.Mpeg.acf model 24 /. Traffic.Mpeg.acf model 12) ** (1.0 /. 12.0)
  in
  let scene =
    Traffic.Dar.make ~name:"scene DAR(1)"
      (Traffic.Dar.gaussian_marginal ~mean:source.Traffic.Process.mean
         ~variance:source.Traffic.Process.variance)
      { Traffic.Dar.rho = scene_rho; weights = [| 1.0 |] }
  in
  let smoothed =
    Traffic.Dar.make ~name:"smoothed"
      (Traffic.Dar.gaussian_marginal ~mean:source.Traffic.Process.mean
         ~variance:((0.12 *. source.Traffic.Process.mean) ** 2.0))
      { Traffic.Dar.rho = 0.98; weights = [| 1.0 |] }
  in
  {
    Common.id = "mpeg_bop";
    title =
      "B-R BOP: MPEG vs scene-level DAR(1) vs GOP-smoothed source (N=30, \
       c=538)";
    xlabel = "buffer msec";
    ylabel = "log10 P(W > B)";
    series =
      [
        Common.bop_series ~label:"MPEG" source ~n ~c
          ~buffers_msec:Common.practical_buffers_msec;
        Common.bop_series ~label:"scene DAR(1)" scene ~n ~c
          ~buffers_msec:Common.practical_buffers_msec;
        Common.bop_series ~label:"smoothed" smoothed ~n ~c
          ~buffers_msec:Common.practical_buffers_msec;
      ];
  }

let run () =
  Ascii_plot.emit (figure_acf ());
  Ascii_plot.emit (figure_cts ());
  Ascii_plot.emit (figure_bop ())
