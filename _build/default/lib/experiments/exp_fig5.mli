(** Fig. 5: Bahadur–Rao BOP over the practical buffer range,
    N = 30, c = 538 cells/frame.  (a) V^v — close short-term
    correlations give close loss curves regardless of LRD weight;
    (b) Z^a — different short-term correlations split the curves wide
    apart despite identical Hurst parameter. *)

val figure_a : unit -> Common.figure
val figure_b : unit -> Common.figure
val run : unit -> unit
