(** Fig. 3: analytic autocorrelation functions.
    (a) V^v for v in (0.67, 1, 1.5) — nearly identical short lags;
    (b) Z^a for all a plus L — identical long-lag tails;
    (c) DAR(p) matched to Z^0.975 — exact first-p-lag agreement;
    (d) DAR(p) matched to Z^0.7. *)

val figure_a : unit -> Common.figure
val figure_b : unit -> Common.figure
val figure_c : unit -> Common.figure
val figure_d : unit -> Common.figure
val run : unit -> unit
