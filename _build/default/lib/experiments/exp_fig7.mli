(** Fig. 7: the same comparison as Fig. 6 pushed far beyond practical
    buffer sizes — where the two LRD claims come from.  L eventually
    out-predicts every DAR(p) because the Z^a decay rate bends over to
    L's from roughly B = 40 msec; the crossover buffer at which that
    happens is itself reported, making "beyond practical consideration"
    quantitative. *)

val figure_a : unit -> Common.figure
val figure_b : unit -> Common.figure

val crossover_msec : a:float -> p:int -> float option
(** Smallest wide-grid buffer (msec) at which the absolute
    log10-BOP error of L (vs Z^a) drops below that of DAR(p). *)

val run : unit -> unit
