(** Fig. 1 (schematic): how the knobs [a] (of Z^a) and [v] (of V^v)
    reshape the autocorrelation function — [a] moves the short-lag
    geometric part, [v] moves the weight of the power-law tail. *)

val figure_z : unit -> Common.figure
val figure_v : unit -> Common.figure
val run : unit -> unit
