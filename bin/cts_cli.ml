(* Command-line driver for the paper-reproduction experiments. *)

let set_env name = function
  | None -> ()
  | Some v -> Unix.putenv name (string_of_int v)

let apply_scale ~frames ~reps ~seed ~results_dir =
  set_env "CTS_FRAMES" frames;
  set_env "CTS_REPS" reps;
  set_env "CTS_SEED" seed;
  match results_dir with
  | None -> ()
  | Some d -> Unix.putenv "CTS_RESULTS_DIR" d

open Cmdliner

(* {2 Telemetry plumbing}

   [--metrics FMT] renders an Obs registry snapshot after the command
   body (to stdout, or to [--metrics-out PATH]); [--trace FILE]
   streams span-completion events as JSON lines while it runs. *)

let metrics_format_conv =
  let parse s =
    match Obs.Export.format_of_string s with
    | Some f -> Ok f
    | None ->
        Error (`Msg (Printf.sprintf "unknown metrics format %S (text|json|prom)" s))
  in
  let print ppf f =
    Format.pp_print_string ppf
      (match f with
      | Obs.Export.Text -> "text"
      | Obs.Export.Json_doc -> "json"
      | Obs.Export.Prometheus -> "prom")
  in
  Arg.conv (parse, print)

type obs_opts = {
  metrics : Obs.Export.format option;
  metrics_out : string;
  trace : string option;
  trace_sample : int option;
  events : bool;
  events_spans : bool;
  events_dir : string option;
}

let obs_term =
  let metrics_arg =
    let doc =
      "After the command finishes, render the telemetry registry as $(docv): \
       $(b,text), $(b,json) (one document), or $(b,prom) (Prometheus text \
       exposition)."
    in
    Arg.(
      value
      & opt (some metrics_format_conv) None
      & info [ "metrics" ] ~docv:"FMT" ~doc)
  in
  let metrics_out_arg =
    let doc = "Where to write the $(b,--metrics) document ('-' = stdout)." in
    Arg.(value & opt string "-" & info [ "metrics-out" ] ~docv:"PATH" ~doc)
  in
  let trace_arg =
    let doc = "Stream span events to $(docv) as JSON lines while running." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let trace_sample_arg =
    let doc =
      "Emit only every $(docv)-th completion of each span name to the \
       $(b,--trace) sink (1 = every span).  Span histograms still see \
       everything; dropped events tick $(b,obs.span.sampled_out)."
    in
    Arg.(
      value & opt (some int) None & info [ "trace-sample" ] ~docv:"N" ~doc)
  in
  let events_arg =
    let doc =
      "Profile GC pauses over the runtime-events ring: a consumer domain \
       feeds per-domain pause histograms \
       ($(b,runtime.ev.gc.pause.us{domain,phase})) into the registry and \
       backs per-request attribution ($(b,srv.http.gc_pause.us), the \
       $(b,gc_pause_us) access-log field, $(b,GET /profile))."
    in
    Arg.(value & flag & info [ "events" ] ~doc)
  in
  let events_spans_arg =
    let doc =
      "Additionally re-emit every span begin/end into the ring as the \
       $(b,cts.span) user event (implies $(b,--events)), so external \
       eventring tools — $(b,cts events tail) — see spans interleaved with \
       GC phases.  Costs a ring write per span transition, so it is a \
       separate opt-in from $(b,--events)."
    in
    Arg.(value & flag & info [ "events-spans" ] ~doc)
  in
  let events_dir_arg =
    let doc =
      "Directory to expose the runtime-events ring file in \
       ($(i,PID).events).  The runtime itself creates the ring where \
       OCAML_RUNTIME_EVENTS_DIR pointed at process startup (default: the \
       current directory); this flag links it into $(docv) so the path \
       can be handed to $(b,cts events tail) regardless.  Default: no \
       link."
    in
    Arg.(
      value & opt (some string) None & info [ "events-dir" ] ~docv:"DIR" ~doc)
  in
  Term.(
    const (fun metrics metrics_out trace trace_sample events events_spans
               events_dir ->
        {
          metrics;
          metrics_out;
          trace;
          trace_sample;
          events = events || events_spans;
          events_spans;
          events_dir;
        })
    $ metrics_arg $ metrics_out_arg $ trace_arg $ trace_sample_arg
    $ events_arg $ events_spans_arg $ events_dir_arg)

(* A bad --trace/--metrics-out path is a usage problem, not an
   internal error: report it cleanly instead of letting Sys_error
   escape (wrapped in Finally_raised) through Cmd.eval. *)
let open_out_or_die ~flag path =
  try open_out path
  with Sys_error msg ->
    Printf.eprintf "cts: cannot open %s file: %s\n%!" flag msg;
    exit 1

let abs_path p =
  if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p

let with_obs opts f =
  (match opts.trace_sample with
  | None -> ()
  | Some n when n >= 1 -> Obs.Span.set_sampling (Obs.Span.One_in n)
  | Some n ->
      Printf.eprintf "cts: --trace-sample must be >= 1 (got %d)\n%!" n;
      exit 1);
  let trace_oc =
    Option.map (open_out_or_die ~flag:"--trace") opts.trace
  in
  (match trace_oc with
  | Some oc -> Obs.Span.set_trace_sink (Obs.Sink.Jsonl oc)
  | None -> ());
  let events =
    if opts.events then
      Some (Obs.Events.start ~bridge:opts.events_spans ())
    else None
  in
  (* The runtime decides where the ring file goes when it reads
     OCAML_RUNTIME_EVENTS_DIR at process startup — far before flag
     parsing — so [--events-dir] cannot move it.  Link the ring into
     the requested directory instead (hard link, symlink on EXDEV);
     external consumers open by path and see the same inode. *)
  let events_link =
    match (opts.events_dir, events) with
    | Some dir, Some _ ->
        let actual = Obs.Events.ring_file () in
        let wanted = Filename.concat dir (Filename.basename actual) in
        if
          Sys.file_exists actual
          && not (String.equal wanted actual)
          && not (Sys.file_exists wanted)
        then begin
          (try Unix.link actual wanted
           with Unix.Unix_error _ -> (
             try Unix.symlink (abs_path actual) wanted
             with Unix.Unix_error (e, _, _) ->
               Printf.eprintf "cts: cannot link ring file into %s: %s\n%!" dir
                 (Unix.error_message e);
               exit 1));
          Some wanted
        end
        else None
    | _ -> None
  in
  let finish () =
    (match events_link with
    | Some path -> ( try Sys.remove path with Sys_error _ -> ())
    | None -> ());
    (match events with None -> () | Some t -> Obs.Events.stop t);
    if opts.trace_sample <> None then Obs.Span.reset_sampling ();
    (match trace_oc with
    | Some oc ->
        Obs.Span.set_trace_sink Obs.Sink.Null;
        close_out oc
    | None -> ());
    match opts.metrics with
    | None -> ()
    | Some fmt -> (
        let doc = Obs.Export.render fmt (Obs.Registry.snapshot ()) in
        match opts.metrics_out with
        | "-" -> print_string doc
        | path ->
            let oc = open_out_or_die ~flag:"--metrics-out" path in
            output_string oc doc;
            close_out oc)
  in
  Fun.protect ~finally:finish f

(* {2 Fault-injection plumbing}

   [--fault-spec RULES] arms the deterministic fault registry before
   the command body runs (chaos testing of the CAC engine); a
   malformed spec is a usage error.  The seed fixes the injection
   stream, so a given (spec, seed, workload seed) triple reproduces
   the exact same faults and decisions. *)

type fault_opts = { fault_spec : string option; fault_seed : int }

let fault_term =
  let spec_arg =
    let doc =
      "Arm deterministic fault injection: comma-separated rules \
       $(i,point=kind[:rate[:param]]) with kinds $(b,raise), $(b,nan), \
       $(b,latency), e.g. 'bahadur_rao.evaluate=nan:0.01'.  See \
       docs/resilience.md for the grammar and injection points."
    in
    Arg.(
      value & opt (some string) None & info [ "fault-spec" ] ~docv:"RULES" ~doc)
  in
  let seed_arg =
    let doc = "Seed for the fault-injection stream." in
    Arg.(value & opt int 7 & info [ "fault-seed" ] ~docv:"SEED" ~doc)
  in
  Term.(
    const (fun fault_spec fault_seed -> { fault_spec; fault_seed })
    $ spec_arg $ seed_arg)

(* Arm the registry, then run [k]; [`Error] on a malformed spec. *)
let with_faults opts k =
  match opts.fault_spec with
  | None -> k ()
  | Some s -> (
      match Resilience.Fault.parse s with
      | Error msg -> `Error (false, Printf.sprintf "bad --fault-spec: %s" msg)
      | Ok rules ->
          Resilience.Fault.configure ~seed:opts.fault_seed rules;
          Fun.protect ~finally:Resilience.Fault.clear k)

let max_retries_arg =
  let doc =
    "Kernel-evaluation retries inside the engine before a decision \
     degrades to the peak-rate fallback."
  in
  Arg.(value & opt int 1 & info [ "max-retries" ] ~docv:"N" ~doc)

let frames_arg =
  let doc = "Frames per simulation replication (default 20000)." in
  Arg.(value & opt (some int) None & info [ "frames" ] ~docv:"N" ~doc)

let reps_arg =
  let doc = "Simulation replications (default 3)." in
  Arg.(value & opt (some int) None & info [ "reps" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Master random seed (default 1996)." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

let results_dir_arg =
  let doc = "Directory for CSV outputs (default ./results)." in
  Arg.(value & opt (some string) None & info [ "results-dir" ] ~docv:"DIR" ~doc)

let list_cmd =
  let run () =
    Printf.printf "%-12s %-5s %s\n" "id" "sim" "title";
    List.iter
      (fun e ->
        Printf.printf "%-12s %-5s %s\n" e.Experiments.Registry.id
          (if e.Experiments.Registry.simulated then "yes" else "no")
          e.Experiments.Registry.title)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments")
    Term.(const run $ const ())

let quiet_arg =
  let doc = "Suppress the per-experiment banner lines." in
  Arg.(value & flag & info [ "quiet" ] ~doc)

let run_cmd =
  let ids_arg =
    let doc = "Experiment identifiers (see $(b,list)); 'all' runs everything." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run frames reps seed results_dir quiet obs_opts ids =
    apply_scale ~frames ~reps ~seed ~results_dir;
    if quiet then Obs.Sink.set_human Obs.Sink.Null;
    with_obs obs_opts @@ fun () ->
    (* Any experiment raising mid-run must surface as a non-zero exit,
       not just a stack trace on a successful process. *)
    let failures =
      List.filter_map
        (fun id ->
          if id = "all" then begin
            match Experiments.Registry.run_all ~quiet () with
            | () -> None
            | exception exn ->
                Some (Printf.sprintf "all: %s" (Printexc.to_string exn))
          end
          else begin
            match Experiments.Registry.find id with
            | Some e -> begin
                if not quiet then
                  Printf.printf "\n######## %s: %s ########\n%!"
                    e.Experiments.Registry.id e.Experiments.Registry.title;
                match Experiments.Registry.run_entry e with
                | () -> None
                | exception exn ->
                    Some (Printf.sprintf "%s: %s" id (Printexc.to_string exn))
              end
            | None -> Some (Printf.sprintf "unknown experiment %S" id)
          end)
        ids
    in
    match failures with
    | [] -> `Ok ()
    | failures -> `Error (false, String.concat "; " failures)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one or more experiments")
    Term.(
      ret
        (const run $ frames_arg $ reps_arg $ seed_arg $ results_dir_arg
       $ quiet_arg $ obs_term $ ids_arg))

let analytic_cmd =
  let run frames reps seed results_dir =
    apply_scale ~frames ~reps ~seed ~results_dir;
    Experiments.Registry.run_all ~include_simulated:false ()
  in
  Cmd.v
    (Cmd.info "analytic"
       ~doc:"Run only the closed-form experiments (fast, deterministic)")
    Term.(const run $ frames_arg $ reps_arg $ seed_arg $ results_dir_arg)

(* Model selection shared by the engineering subcommands. *)
let model_of_name name =
  match String.lowercase_ascii name with
  | "z0.7" -> Some (Traffic.Models.z ~a:0.7).Traffic.Models.process
  | "z0.9" -> Some (Traffic.Models.z ~a:0.9).Traffic.Models.process
  | "z0.975" -> Some (Traffic.Models.z ~a:0.975).Traffic.Models.process
  | "z0.99" -> Some (Traffic.Models.z ~a:0.99).Traffic.Models.process
  | "l" -> Some (Traffic.Models.l ())
  | "dar1" -> Some (Traffic.Models.s ~a:0.975 ~p:1)
  | "dar2" -> Some (Traffic.Models.s ~a:0.975 ~p:2)
  | "dar3" -> Some (Traffic.Models.s ~a:0.975 ~p:3)
  | "mpeg" -> Some (Traffic.Mpeg.process (Traffic.Mpeg.create ~mean:500.0 ()))
  | _ -> None

let model_names = "z0.7, z0.9, z0.975, z0.99, l, dar1, dar2, dar3, mpeg"

let model_arg =
  let doc = Printf.sprintf "Source model: one of %s." model_names in
  Arg.(value & opt string "z0.975" & info [ "model" ] ~docv:"MODEL" ~doc)

let n_arg =
  let doc = "Number of multiplexed sources." in
  Arg.(value & opt int 30 & info [ "n" ] ~docv:"N" ~doc)

let c_arg =
  let doc = "Bandwidth per source, cells/frame." in
  Arg.(value & opt float 538.0 & info [ "c" ] ~docv:"CELLS" ~doc)

let buffer_arg =
  let doc = "Total buffer size as maximum drain delay, msec." in
  Arg.(value & opt float 10.0 & info [ "buffer-msec" ] ~docv:"MSEC" ~doc)

let analyze_cmd =
  let run model_name n c buffer_msec =
    match model_of_name model_name with
    | None ->
        `Error (false, Printf.sprintf "unknown model %S (try %s)" model_name model_names)
    | Some model ->
        let vg =
          Core.Variance_growth.create ~acf:model.Traffic.Process.acf
            ~variance:model.Traffic.Process.variance
        in
        let mu = model.Traffic.Process.mean in
        let b =
          Queueing.Units.buffer_cells_of_msec ~msec:buffer_msec
            ~service_cells_per_frame:(float_of_int n *. c)
            ~ts:Traffic.Models.ts
          /. float_of_int n
        in
        if c <= mu then `Error (false, "unstable: bandwidth per source <= mean")
        else begin
          let br = Core.Bahadur_rao.evaluate vg ~mu ~c ~b ~n in
          let ln = Core.Large_n.evaluate vg ~mu ~c ~b ~n in
          Printf.printf "model          %s\n" model.Traffic.Process.name;
          Printf.printf "sources        %d at c = %g cells/frame (util %.1f%%)\n"
            n c (100.0 *. mu /. c);
          Printf.printf "buffer         %g msec = %.0f cells total\n" buffer_msec
            (b *. float_of_int n);
          Printf.printf "CTS m*_b       %d frames\n"
            br.Core.Bahadur_rao.cts.Core.Cts.m_star;
          Printf.printf "rate I(c,b)    %.5f\n" br.Core.Bahadur_rao.cts.Core.Cts.rate;
          Printf.printf "log10 BOP      %.3f (Bahadur-Rao)  %.3f (Large-N)\n"
            br.Core.Bahadur_rao.log10_bop ln.Core.Large_n.log10_bop;
          Printf.printf "cutoff freq    %.4f rad/frame (pi / m*)\n"
            (Core.Spectrum.cutoff_frequency_of_cts
               ~m_star:br.Core.Bahadur_rao.cts.Core.Cts.m_star);
          `Ok ()
        end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Critical time scale and overflow probability for one scenario")
    Term.(ret (const run $ model_arg $ n_arg $ c_arg $ buffer_arg))

let admit_cmd =
  let capacity_arg =
    let doc = "Total link capacity, cells/frame." in
    Arg.(value & opt float 16140.0 & info [ "capacity" ] ~docv:"CELLS" ~doc)
  in
  let target_arg =
    let doc = "Target cell loss rate." in
    Arg.(value & opt float 1e-6 & info [ "clr" ] ~docv:"CLR" ~doc)
  in
  let run model_name capacity buffer_msec target_clr =
    match model_of_name model_name with
    | None ->
        `Error (false, Printf.sprintf "unknown model %S (try %s)" model_name model_names)
    | Some model ->
        let vg =
          Core.Variance_growth.create ~acf:model.Traffic.Process.acf
            ~variance:model.Traffic.Process.variance
        in
        let total_buffer =
          Queueing.Units.buffer_cells_of_msec ~msec:buffer_msec
            ~service_cells_per_frame:capacity ~ts:Traffic.Models.ts
        in
        let n =
          Core.Admission.max_admissible vg ~mu:model.Traffic.Process.mean
            ~total_capacity:capacity ~total_buffer ~target_clr
        in
        Printf.printf
          "%d %s connections admissible on %g cells/frame with %g msec buffer \
           at CLR <= %g\n"
          n model.Traffic.Process.name capacity buffer_msec target_clr;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "admit"
       ~doc:"Connection admission count for a link, buffer and CLR target")
    Term.(ret (const run $ model_arg $ capacity_arg $ buffer_arg $ target_arg))

let simulate_cmd =
  let frames_sim_arg =
    let doc = "Frames to simulate." in
    Arg.(value & opt int 50_000 & info [ "frames" ] ~docv:"N" ~doc)
  in
  let reps_sim_arg =
    let doc = "Independent replications." in
    Arg.(value & opt int 3 & info [ "reps" ] ~docv:"N" ~doc)
  in
  let seed_sim_arg =
    let doc = "Random seed." in
    Arg.(value & opt int 1996 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let run model_name n c buffer_msec frames reps seed =
    match model_of_name model_name with
    | None ->
        `Error (false, Printf.sprintf "unknown model %S (try %s)" model_name model_names)
    | Some model ->
        let scenario =
          Queueing.Scenario.make ~model ~n ~c ~ts:Traffic.Models.ts
        in
        let intervals =
          Queueing.Scenario.clr_curve scenario ~buffers_msec:[| buffer_msec |]
            ~frames ~reps ~seed
        in
        let ci = intervals.(0) in
        Printf.printf
          "%s x%d at c = %g, buffer %g msec: CLR = %.3e (95%% CI +/- %.1e, %d \
           x %d frames)\n"
          model.Traffic.Process.name n c buffer_msec ci.Stats.Ci.point
          ci.Stats.Ci.half_width reps frames;
        (match
           Core.Bahadur_rao.evaluate
             (Core.Variance_growth.create ~acf:model.Traffic.Process.acf
                ~variance:model.Traffic.Process.variance)
             ~mu:model.Traffic.Process.mean ~c
             ~b:
               (Queueing.Units.buffer_cells_of_msec ~msec:buffer_msec
                  ~service_cells_per_frame:(float_of_int n *. c)
                  ~ts:Traffic.Models.ts
               /. float_of_int n)
             ~n
         with
        | r ->
            Printf.printf "Bahadur-Rao estimate: %.3e (infinite-buffer BOP)\n"
              r.Core.Bahadur_rao.bop
        | exception Invalid_argument _ -> ());
        `Ok ()
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate one multiplexer scenario directly")
    Term.(
      ret
        (const run $ model_arg $ n_arg $ c_arg $ buffer_arg $ frames_sim_arg
       $ reps_sim_arg $ seed_sim_arg))

(* {2 The online CAC engine} *)

let split_commas s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

(* "dar1,z0.975" (equal weights) or "dar1:2,z0.975:1". *)
let parse_mix s =
  let parse_entry entry =
    let name, weight =
      match String.index_opt entry ':' with
      | None -> (entry, 1.0)
      | Some i ->
          ( String.sub entry 0 i,
            String.sub entry (i + 1) (String.length entry - i - 1)
            |> float_of_string_opt
            |> Option.value ~default:nan )
    in
    Option.map (fun cls -> (cls, weight)) (Cac.Source_class.of_name name)
  in
  let entries = List.map parse_entry (split_commas s) in
  if
    entries = []
    || List.exists
         (function None -> true | Some (_, w) -> not (w > 0.0))
         entries
  then None
  else Some (List.map Option.get entries)

let class_names_doc = String.concat ", " Cac.Source_class.names

let cac_capacity_arg =
  let doc = "Total link capacity, cells/frame." in
  Arg.(value & opt float 16140.0 & info [ "capacity" ] ~docv:"CELLS" ~doc)

let cac_clr_arg =
  let doc = "Target cell loss rate." in
  Arg.(value & opt float 1e-6 & info [ "clr" ] ~docv:"CLR" ~doc)

let cac_class_arg =
  let doc = Printf.sprintf "Traffic class: one of %s." class_names_doc in
  Arg.(value & opt string "z0.975" & info [ "model" ] ~docv:"CLASS" ~doc)

let cac_decide_cmd =
  let existing_arg =
    let doc = "Connections of the class already admitted on the link." in
    Arg.(value & opt int 0 & info [ "n" ] ~docv:"N" ~doc)
  in
  let run model capacity buffer_msec target_clr existing max_retries fault_opts
      obs_opts =
    with_obs obs_opts @@ fun () ->
    with_faults fault_opts @@ fun () ->
    match Cac.Source_class.of_name model with
    | None ->
        `Error
          (false, Printf.sprintf "unknown class %S (try %s)" model class_names_doc)
    | Some cls ->
        let engine = Cac.Engine.create ~max_retries () in
        let link =
          Cac.Engine.add_link_msec engine ~id:"link" ~capacity ~buffer_msec
            ~target_clr
        in
        let rec preload k =
          k = 0
          ||
          match Cac.Engine.admit engine ~link:"link" ~cls with
          | Cac.Engine.Admitted _ -> preload (k - 1)
          | Cac.Engine.Rejected _ -> false
        in
        if existing < 0 then `Error (false, "--n must be non-negative")
        else if not (preload existing) then
          `Error
            ( false,
              Printf.sprintf
                "the pre-existing load of %d connections is itself inadmissible"
                existing )
        else begin
          let time f =
            let t0 = Obs.Clock.wall () in
            let v = f () in
            (v, 1e6 *. (Obs.Clock.wall () -. t0))
          in
          let verdict, cold_us =
            time (fun () -> Cac.Engine.evaluate engine ~link:"link" ~cls)
          in
          let _, warm_us =
            time (fun () -> Cac.Engine.evaluate engine ~link:"link" ~cls)
          in
          Printf.printf "link           %g cells/frame, buffer %g msec (%.0f cells), CLR <= %g\n"
            capacity buffer_msec (Cac.Link.buffer link) target_clr;
          Printf.printf "admitted       %d x %s (utilization %.1f%%)\n" existing
            model
            (100.0 *. Cac.Link.utilization link);
          Printf.printf "decision       %s%s\n"
            (if verdict.Cac.Engine.admissible then "ADMIT"
             else
               match verdict.Cac.Engine.reason with
               | Some Cac.Engine.Unstable -> "REJECT (mean load at capacity)"
               | _ when verdict.Cac.Engine.degraded ->
                   "REJECT (peak-rate allocation exceeds capacity)"
               | _ -> "REJECT (CLR target exceeded)")
            (if verdict.Cac.Engine.degraded then
               " [degraded: kernel failed, fail-closed peak-rate fallback]"
             else "");
          (match verdict.Cac.Engine.log10_bop with
          | Some bop -> Printf.printf "log10 BOP      %.3f (target %.3f)\n" bop (log10 target_clr)
          | None -> ());
          (match verdict.Cac.Engine.required_bw with
          | Some bw ->
              Printf.printf "%-14s %.1f of %g cells/frame\n"
                (if verdict.Cac.Engine.degraded then "peak-rate bw"
                 else "effective bw")
                bw capacity
          | None -> ());
          Printf.printf "latency        %.1f us cold, %.1f us cached\n" cold_us
            warm_us;
          `Ok ()
        end
  in
  Cmd.v
    (Cmd.info "decide"
       ~doc:"One admission decision against a link with existing load")
    Term.(
      ret
        (const run $ cac_class_arg $ cac_capacity_arg $ buffer_arg $ cac_clr_arg
       $ existing_arg $ max_retries_arg $ fault_term $ obs_term))

let cac_replay_cmd =
  let mix_arg =
    let doc =
      Printf.sprintf
        "Traffic mix: comma-separated classes with optional weights, e.g. \
         'dar1:2,z0.975:1'.  Classes: %s."
        class_names_doc
    in
    Arg.(value & opt string "z0.975" & info [ "mix" ] ~docv:"MIX" ~doc)
  in
  let requests_arg =
    let doc = "Connection attempts to replay." in
    Arg.(value & opt int 10_000 & info [ "requests" ] ~docv:"N" ~doc)
  in
  let rate_arg =
    let doc =
      "Arrival rate, connections/s (default: 1.1 x the link's fill boundary \
       divided by the holding time)."
    in
    Arg.(value & opt (some float) None & info [ "rate" ] ~docv:"PER_SEC" ~doc)
  in
  let holding_arg =
    let doc = "Mean connection holding time, seconds." in
    Arg.(value & opt float 60.0 & info [ "holding" ] ~docv:"SEC" ~doc)
  in
  let seed_replay_arg =
    let doc = "Random seed." in
    Arg.(value & opt int 1996 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let run mix_s capacity buffer_msec target_clr requests rate holding seed
      max_retries fault_opts obs_opts =
    with_obs obs_opts @@ fun () ->
    with_faults fault_opts @@ fun () ->
    match parse_mix mix_s with
    | None ->
        `Error
          ( false,
            Printf.sprintf "bad mix %S (classes: %s, weights > 0)" mix_s
              class_names_doc )
    | Some mix ->
        let make_engine () =
          let engine = Cac.Engine.create ~max_retries () in
          ignore
            (Cac.Engine.add_link_msec engine ~id:"link" ~capacity ~buffer_msec
               ~target_clr);
          engine
        in
        let arrival_rate =
          match rate with
          | Some r -> r
          | None ->
              let scratch = make_engine () in
              let n_max =
                Cac.Engine.fill scratch ~link:"link" ~cls:(fst (List.hd mix))
              in
              1.1 *. float_of_int (Stdlib.max 1 n_max) /. holding
        in
        let spec =
          Cac.Workload.spec ~mean_holding:holding ~arrival_rate ~requests ~mix
            ()
        in
        let engine = make_engine () in
        let t0 = Obs.Clock.wall () in
        let result =
          Cac.Workload.run engine ~link:"link" spec
            (Numerics.Rng.create ~seed)
        in
        let elapsed = Obs.Clock.wall () -. t0 in
        Printf.printf
          "replayed %d connection attempts (%.2f Erlangs offered) in %.2f s\n"
          result.Cac.Workload.offered
          (Cac.Workload.offered_load spec)
          elapsed;
        Printf.printf "admitted       %d\n" result.Cac.Workload.admitted;
        Printf.printf "rejected       %d\n" result.Cac.Workload.rejected;
        if result.Cac.Workload.errors > 0 || result.Cac.Workload.degraded > 0
        then
          Printf.printf
            "resilience     %d engine errors (fail-closed), %d degraded \
             peak-rate decisions\n"
            result.Cac.Workload.errors result.Cac.Workload.degraded;
        Printf.printf "blocking       %.4f overall, %.4f steady-state\n"
          result.Cac.Workload.blocking result.Cac.Workload.steady_blocking;
        Printf.printf "occupancy      %.1f mean, %d peak, %d at end\n"
          result.Cac.Workload.mean_occupancy result.Cac.Workload.peak_occupancy
          result.Cac.Workload.final_occupancy;
        Printf.printf "cache          %.1f%% hits overall, %.1f%% steady-state\n"
          (100.0 *. result.Cac.Workload.cache_hit_rate)
          (100.0 *. result.Cac.Workload.steady_cache_hit_rate);
        Printf.printf "latency        %.2f us mean per decision\n"
          result.Cac.Workload.mean_latency_us;
        let stats = Cac.Engine.cache_stats engine in
        Printf.printf "cache entries  %d (%d evictions)\n"
          stats.Cac.Decision_cache.entries stats.Cac.Decision_cache.evictions;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay a Poisson/exponential connection workload on one link")
    Term.(
      ret
        (const run $ mix_arg $ cac_capacity_arg $ buffer_arg $ cac_clr_arg
       $ requests_arg $ rate_arg $ holding_arg $ seed_replay_arg
       $ max_retries_arg $ fault_term $ obs_term))

let cac_sweep_cmd =
  let models_arg =
    let doc =
      Printf.sprintf "Comma-separated traffic classes (%s)." class_names_doc
    in
    Arg.(
      value & opt string "z0.975,dar1,dar3,l" & info [ "models" ] ~docv:"LIST" ~doc)
  in
  let buffers_arg =
    let doc = "Comma-separated buffer sizes, msec." in
    Arg.(value & opt string "10,20,30" & info [ "buffers" ] ~docv:"LIST" ~doc)
  in
  let clrs_arg =
    let doc = "Comma-separated CLR targets." in
    Arg.(value & opt string "1e-6" & info [ "clrs" ] ~docv:"LIST" ~doc)
  in
  let requests_arg =
    let doc = "Workload attempts replayed per grid cell (0 disables)." in
    Arg.(value & opt int 2000 & info [ "requests" ] ~docv:"N" ~doc)
  in
  let domains_arg =
    let doc = "Worker domains (default: the recommended domain count)." in
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)
  in
  let seed_sweep_arg =
    let doc = "Master seed for per-cell workloads." in
    Arg.(value & opt int 1996 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let check_arg =
    let doc = "Re-run sequentially and verify bit-identical results." in
    Arg.(value & flag & info [ "check-sequential" ] ~doc)
  in
  let task_retries_arg =
    let doc = "Retries per failing sweep task before it reports ERROR." in
    Arg.(value & opt int 1 & info [ "task-retries" ] ~docv:"N" ~doc)
  in
  let heatmap_arg =
    let doc =
      "After the sweep, print the per-buffer m* distribution heatmap \
       (ASCII render of the labelled $(b,cts.m_star) histograms)."
    in
    Arg.(value & flag & info [ "heatmap" ] ~doc)
  in
  let run models buffers clrs capacity requests domains seed check task_retries
      heatmap fault_opts obs_opts =
    with_obs obs_opts @@ fun () ->
    with_faults fault_opts @@ fun () ->
    let class_names = split_commas models in
    let unknown =
      List.filter (fun n -> Cac.Source_class.of_name n = None) class_names
    in
    let buffers_msec = List.filter_map float_of_string_opt (split_commas buffers) in
    let target_clrs = List.filter_map float_of_string_opt (split_commas clrs) in
    if class_names = [] || unknown <> [] then
      `Error
        ( false,
          Printf.sprintf "bad class list %S (classes: %s)" models
            class_names_doc )
    else if buffers_msec = [] || target_clrs = [] then
      `Error (false, "need at least one buffer size and one CLR target")
    else begin
      let scenarios =
        Cac.Sweep.grid ~capacity ~requests ~seed ~class_names ~buffers_msec
          ~target_clrs ()
      in
      let t0 = Obs.Clock.wall () in
      let outcomes = Cac.Sweep.run ?domains ~task_retries scenarios in
      let elapsed = Obs.Clock.wall () -. t0 in
      Cac.Sweep.print_table outcomes;
      let failed = List.length (Cac.Sweep.failures outcomes) in
      Printf.printf "%d scenarios (%d failed) in %.2f s\n"
        (Array.length outcomes) failed elapsed;
      if heatmap then begin
        match Obs.Heatmap.of_snapshot (Obs.Registry.snapshot ()) with
        | Some hm -> print_string (Obs.Heatmap.to_ascii hm)
        | None -> Printf.printf "no per-buffer m* observations recorded\n"
      end;
      if not check then `Ok ()
      else begin
        let sequential = Cac.Sweep.run ~domains:1 ~task_retries scenarios in
        if sequential = outcomes then begin
          Printf.printf "sequential re-run: identical\n";
          `Ok ()
        end
        else `Error (false, "parallel and sequential sweeps diverge")
      end
    end
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Domain-parallel capacity-planning sweep over (class, buffer, CLR)")
    Term.(
      ret
        (const run $ models_arg $ buffers_arg $ clrs_arg $ cac_capacity_arg
       $ requests_arg $ domains_arg $ seed_sweep_arg $ check_arg
       $ task_retries_arg $ heatmap_arg $ fault_term $ obs_term))

let cac_verify_state_cmd =
  let dir_arg =
    let doc = "State directory ($(b,--state-dir) of a $(b,cts serve) run)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let json_verify_arg =
    let doc = "Print the recovery report as one JSON document." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run dir json =
    match Persist.Recovery.verify ~dir with
    | Error e -> `Error (false, Printf.sprintf "state verification failed: %s" e)
    | Ok r ->
        if json then
          print_endline (Obs.Json.to_string (Persist.Recovery.report_json r))
        else begin
          Printf.printf "state dir      %s\n" r.Persist.Recovery.r_dir;
          (match r.Persist.Recovery.r_snapshot with
          | None -> Printf.printf "snapshot       none\n"
          | Some (covers, path) ->
              Printf.printf "snapshot       %s (covers segment %d, %d connections)\n"
                (Filename.basename path) covers
                r.Persist.Recovery.r_snapshot_conns);
          List.iter
            (fun s ->
              Printf.printf "segment        %s: %d records (%d applied, %d skipped)%s\n"
                s.Persist.Recovery.sr_file s.Persist.Recovery.sr_records
                s.Persist.Recovery.sr_applied s.Persist.Recovery.sr_skipped
                (match s.Persist.Recovery.sr_torn with
                | None -> ""
                | Some off -> Printf.sprintf ", torn tail at offset %d" off))
            r.Persist.Recovery.r_segments;
          Printf.printf "recovered      %d links, %d connections\n"
            r.Persist.Recovery.r_links r.Persist.Recovery.r_conns;
          List.iter
            (fun s ->
              match s.Persist.Recovery.sr_torn with
              | None -> ()
              | Some off ->
                  Printf.eprintf
                    "cts: warning: %s has a torn final record at offset %d \
                     (crash residue; recovery truncates it)\n%!"
                    s.Persist.Recovery.sr_file off)
            r.Persist.Recovery.r_segments
        end;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "verify-state"
       ~doc:
         "Replay a serve daemon's durable state offline: exit 0 if the \
          snapshot and journal reconstruct cleanly (torn tails warn), \
          non-zero on interior corruption")
    Term.(ret (const run $ dir_arg $ json_verify_arg))

let cac_cmd =
  Cmd.group
    (Cmd.info "cac"
       ~doc:
         "Online connection-admission-control engine (decide, replay, sweep, \
          verify-state)")
    [ cac_decide_cmd; cac_replay_cmd; cac_sweep_cmd; cac_verify_state_cmd ]

(* {2 The serving daemon} *)

(* "id=capacity:buffer_msec:clr", e.g. "oc3=16140:20:1e-6". *)
let parse_link_spec s =
  match String.index_opt s '=' with
  | None -> None
  | Some i -> (
      let id = String.trim (String.sub s 0 i) in
      let rhs = String.sub s (i + 1) (String.length s - i - 1) in
      match
        String.split_on_char ':' rhs |> List.map float_of_string_opt
      with
      | [ Some capacity; Some buffer_msec; Some target_clr ]
        when id <> "" && capacity > 0.0 && buffer_msec > 0.0
             && target_clr > 0.0 && target_clr < 1.0 ->
          Some (id, capacity, buffer_msec, target_clr)
      | _ -> None)

let serve_cmd =
  let host_arg =
    let doc = "Address to bind." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)
  in
  let port_arg =
    let doc = "TCP port (0 picks an ephemeral port)." in
    Arg.(value & opt int 8080 & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let domains_arg =
    let doc = "Worker domains draining the request queue." in
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc =
      "Accepted connections queued before the server sheds with 503."
    in
    Arg.(value & opt int 128 & info [ "queue-capacity" ] ~docv:"N" ~doc)
  in
  let read_timeout_arg =
    let doc = "Per-request read deadline, seconds (0 disables)." in
    Arg.(value & opt float 10.0 & info [ "read-timeout" ] ~docv:"SEC" ~doc)
  in
  let max_body_arg =
    let doc = "Largest accepted request body, bytes." in
    Arg.(value & opt int (1 lsl 20) & info [ "max-body" ] ~docv:"BYTES" ~doc)
  in
  let links_arg =
    let doc =
      "Link to serve, as $(i,id=capacity:buffer_msec:clr) (repeatable).  \
       Default: the two links of examples/cac_server.ml."
    in
    Arg.(
      value
      & opt_all string [ "oc3=16140:20:1e-6"; "access=5380:10:1e-6" ]
      & info [ "link" ] ~docv:"SPEC" ~doc)
  in
  let cache_arg =
    let doc = "Decision-cache capacity (0 disables caching)." in
    Arg.(value & opt int 4096 & info [ "cache-capacity" ] ~docv:"N" ~doc)
  in
  let breaker_cooldown_s_arg =
    let doc =
      "Wall-clock circuit-breaker cooldown, seconds (default: the \
       deterministic eval-count cooldown).  A tripped breaker probes again \
       after this long regardless of traffic — the right mode for a \
       long-running daemon."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "breaker-cooldown-s" ] ~docv:"SEC" ~doc)
  in
  let state_dir_arg =
    let doc =
      "Durable state directory: journal every admitted/released connection \
       to a write-ahead log, checkpoint periodically, and replay it all back \
       on the next boot (before the socket binds).  Without this flag the \
       connection table is in-memory only."
    in
    Arg.(value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR" ~doc)
  in
  let fsync_policy_arg =
    let doc =
      "WAL durability: $(b,always) (fsync before every ack; loses nothing), \
       $(b,every:N) (fsync per N records; a power loss may lose up to N \
       acked connections, a plain crash none), or $(b,never) (page cache \
       only)."
    in
    Arg.(value & opt string "always" & info [ "fsync-policy" ] ~docv:"POLICY" ~doc)
  in
  let snapshot_every_arg =
    let doc =
      "Checkpoint the connection table after $(docv) journaled ops (0 = only \
       on graceful shutdown)."
    in
    Arg.(value & opt int 10_000 & info [ "snapshot-every" ] ~docv:"N" ~doc)
  in
  let access_log_file_arg =
    let doc =
      "Append the JSON access log to $(docv) instead of stdout; SIGHUP \
       reopens it (logrotate-friendly)."
    in
    Arg.(
      value & opt (some string) None & info [ "access-log" ] ~docv:"PATH" ~doc)
  in
  let run host port domains queue read_timeout max_body links cache_capacity
      max_retries breaker_cooldown_s state_dir fsync_policy snapshot_every
      access_log_path quiet fault_opts obs_opts =
    with_obs obs_opts @@ fun () ->
    with_faults fault_opts @@ fun () ->
    if quiet then Obs.Sink.set_human Obs.Sink.Null;
    let parsed = List.map parse_link_spec links in
    if queue < 1 then `Error (false, "--queue-capacity must be >= 1")
    else if max_body < 0 then `Error (false, "--max-body must be >= 0")
    else if
      match breaker_cooldown_s with
      | Some s when not (Float.is_finite s && s >= 0.0) -> true
      | _ -> false
    then `Error (false, "--breaker-cooldown-s must be finite and >= 0")
    else if snapshot_every < 0 then
      `Error (false, "--snapshot-every must be >= 0")
    else if List.mem None parsed then
      `Error
        ( false,
          "bad --link spec (want id=capacity:buffer_msec:clr, e.g. \
           oc3=16140:20:1e-6)" )
    else begin
      match Persist.Wal.policy_of_string fsync_policy with
      | Error msg -> `Error (false, "bad --fsync-policy: " ^ msg)
      | Ok policy -> (
      let engine =
        Cac.Engine.create ~cache_capacity ~max_retries ?breaker_cooldown_s ()
      in
      (* The API starts not-ready when there is state to replay:
         decide/admit/release answer 503 and /healthz reports
         "recovering" until the journal is fully applied. *)
      let api = Srv.Cac_api.create ~recovering:(state_dir <> None) engine in
      (* Recover (snapshot, then WAL replay) into the cold engine, then
         open the store and install the journal hook — interior
         corruption fails the boot closed rather than over-admit on a
         guessed connection table. *)
      let persist =
        match state_dir with
        | None -> Ok None
        | Some dir -> (
            match Persist.Recovery.recover ~dir engine with
            | Error e ->
                Error
                  (Printf.sprintf "state recovery failed (fail closed): %s" e)
            | Ok report -> (
                match
                  Persist.Store.open_ ~dir ~policy ~snapshot_every
                    ~next_seq:report.Persist.Recovery.r_next_seq
                with
                | exception Sys_error msg -> Error msg
                | exception (Unix.Unix_error _ as e) ->
                    Error
                      (Printf.sprintf "cannot open state dir %s: %s" dir
                         (Printexc.to_string e))
                | store ->
                    Cac.Engine.set_journal engine
                      (Some (Persist.Store.journal store));
                    Ok (Some (store, report))))
      in
      match persist with
      | Error e -> `Error (false, e)
      | Ok persist ->
      (* Configured links the recovered state does not already carry are
         added (and journaled) now; recovered links win over respecs. *)
      let existing =
        List.map Cac.Link.id (Cac.Engine.links engine)
      in
      List.iter
        (fun spec ->
          let id, capacity, buffer_msec, target_clr = Option.get spec in
          if not (List.mem id existing) then
            ignore
              (Cac.Engine.add_link_msec engine ~id ~capacity ~buffer_msec
                 ~target_clr))
        parsed;
      (* Boot checkpoint: fold the replayed journal into a fresh
         snapshot so the old segments compact away immediately, then
         arm the per-ack durability barrier and open for business. *)
      (match persist with
      | None -> ()
      | Some (store, _) ->
          (match
             Persist.Store.snapshot store
               ~with_engine:(Srv.Cac_api.with_engine api)
           with
          | Ok _ -> ()
          | Error e ->
              Printf.eprintf
                "cts serve: boot snapshot failed: %s (journal remains \
                 authoritative)\n\
                 %!"
                e);
          Srv.Cac_api.set_barrier api (fun () -> Persist.Store.barrier store));
      Srv.Cac_api.set_ready api;
      (* SIGHUP: flag now, rotate sinks from the accept loop's
         housekeeping tick (signal handlers must not do I/O). *)
      let hup = Atomic.make false in
      Sys.set_signal Sys.sighup
        (Sys.Signal_handle (fun _ -> Atomic.set hup true));
      let reopen_append path =
        match
          open_out_gen [ Open_creat; Open_append; Open_wronly ] 0o644 path
        with
        | oc -> Some oc
        | exception Sys_error msg ->
            Printf.eprintf
              "cts serve: cannot reopen %s: %s (keeping the old sink)\n%!"
              path msg;
            None
      in
      let access =
        Option.map
          (fun path ->
            match reopen_append path with
            | Some oc -> (path, Atomic.make (Obs.Sink.Jsonl oc))
            | None -> exit 1)
          access_log_path
      in
      (* Superseded channels are flushed at rotation but only closed
         after the drain — a worker may still be writing its line. *)
      let retired = ref [] in
      let installed_trace = ref None in
      let rotate_sinks () =
        (match access with
        | None -> ()
        | Some (path, cell) -> (
            match reopen_append path with
            | None -> ()
            | Some oc -> (
                match Atomic.exchange cell (Obs.Sink.Jsonl oc) with
                | Obs.Sink.Jsonl old | Obs.Sink.Text old ->
                    (try flush old with Sys_error _ -> ());
                    retired := old :: !retired
                | Obs.Sink.Null -> ())));
        match obs_opts.trace with
        | None -> ()
        | Some path -> (
            match reopen_append path with
            | None -> ()
            | Some oc ->
                Obs.Span.set_trace_sink (Obs.Sink.Jsonl oc);
                (match !installed_trace with
                | Some old ->
                    (try flush old with Sys_error _ -> ());
                    retired := old :: !retired
                | None -> ());
                installed_trace := Some oc)
      in
      let tick () =
        if Atomic.exchange hup false then begin
          if not quiet then
            Printf.printf "cts serve: SIGHUP — reopening log sinks\n%!";
          rotate_sinks ()
        end;
        match persist with
        | None -> ()
        | Some (store, _) -> (
            match
              Persist.Store.maybe_snapshot store
                ~with_engine:(Srv.Cac_api.with_engine api)
            with
            | Some (Error e) ->
                Printf.eprintf
                  "cts serve: snapshot failed: %s (journal remains \
                   authoritative)\n\
                   %!"
                  e
            | Some (Ok _) | None -> ())
      in
      let config =
        {
          Srv.Pool.default_config with
          domains =
            (match domains with
            | Some d -> d
            | None -> Srv.Pool.default_config.Srv.Pool.domains);
          queue_capacity = queue;
          read_timeout_s =
            (if read_timeout > 0.0 then Some read_timeout else None);
          limits = { Srv.Http.default_limits with max_body };
          (* One JSON line per request: to --access-log when given
             (SIGHUP-rotatable), else the human sink, which --quiet
             silences via the Null sink installed above. *)
          access_log = true;
          access_sink =
            Option.map (fun (_, cell) () -> Atomic.get cell) access;
          tick = Some tick;
        }
      in
      match Srv.Pool.create ~config (Srv.Cac_api.router api) with
      | exception Invalid_argument msg -> `Error (false, msg)
      | pool -> (
          match Srv.Pool.listen ~host ~port () with
          | exception (Unix.Unix_error _ as e) ->
              `Error
                ( false,
                  Printf.sprintf "cannot listen on %s:%d: %s" host port
                    (Printexc.to_string e) )
          | exception Invalid_argument msg -> `Error (false, msg)
          | listen_fd ->
              (* Graceful drain: SIGTERM/SIGINT set the stop flag (one
                 atomic write, signal-safe); the accept loop notices
                 within a poll tick, queued requests are answered, the
                 workers join, and serve returns for a clean exit 0. *)
              let stop_signal _ = Srv.Pool.stop pool in
              Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_signal);
              Sys.set_signal Sys.sigint (Sys.Signal_handle stop_signal);
              (* The /debug/vars "server" section: live pool state,
                 read per request. *)
              ignore
                (Srv.Cac_api.add_debug_provider api ~name:"server" (fun () ->
                     Obs.Json.Obj
                       [
                         ("domains", Obs.Json.Int config.Srv.Pool.domains);
                         ("queue_capacity", Obs.Json.Int queue);
                         ( "queue_length",
                           Obs.Json.Int (Srv.Pool.queue_length pool) );
                         ( "accepting",
                           Obs.Json.Bool (Srv.Pool.accepting pool) );
                         ( "breaker_cooldown_s",
                           match breaker_cooldown_s with
                           | Some s -> Obs.Json.Float s
                           | None -> Obs.Json.Null );
                       ]));
              (* The /debug/vars "events" section: the GC-pause
                 consumer's state (running flag, ring file, per-domain
                 totals) — present whether or not --events is on, so
                 clients can tell "off" from "absent". *)
              ignore
                (Srv.Cac_api.add_debug_provider api ~name:"events"
                   Obs.Events.debug_json);
              (* The /debug/vars "persist" section: live store figures
                 plus the boot-time recovery report. *)
              (match persist with
              | None -> ()
              | Some (store, report) ->
                  ignore
                    (Srv.Cac_api.add_debug_provider api ~name:"persist"
                       (fun () ->
                         match Persist.Store.debug_json store with
                         | Obs.Json.Obj fields ->
                             Obs.Json.Obj
                               (fields
                               @ [
                                   ( "recovery",
                                     Persist.Recovery.report_json report );
                                 ])
                         | j -> j)));
              if not quiet then begin
                Printf.printf
                  "cts serve: listening on %s:%d (%d domains, queue %d)\n" host
                  (Srv.Pool.bound_port listen_fd)
                  config.Srv.Pool.domains queue;
                List.iter
                  (fun link ->
                    Printf.printf
                      "cts serve:   link %-7s %.0f cells/frame, buffer %.1f \
                       msec, CLR <= %g\n"
                      (Cac.Link.id link) (Cac.Link.capacity link)
                      (Cac.Link.buffer_msec link) (Cac.Link.target_clr link))
                  (Srv.Cac_api.with_engine api Cac.Engine.links);
                (match persist with
                | None -> ()
                | Some (store, report) ->
                    Printf.printf
                      "cts serve: durable state in %s (fsync %s, snapshot \
                       every %d ops)\n"
                      (Persist.Store.dir store)
                      (Persist.Wal.policy_name policy)
                      snapshot_every;
                    Printf.printf
                      "cts serve: recovered %d links, %d connections (%d \
                       records applied, %d skipped, %d torn tails)\n"
                      report.Persist.Recovery.r_links
                      report.Persist.Recovery.r_conns
                      report.Persist.Recovery.r_applied
                      report.Persist.Recovery.r_skipped
                      report.Persist.Recovery.r_torn);
                Printf.printf
                  "cts serve: POST /v1/decide /v1/admit /v1/release, GET \
                   /metrics /healthz /breakers /debug/vars /profile \
                   /heatmap\n\
                   %!";
                if obs_opts.events then
                  let ring = Obs.Events.ring_file () in
                  Printf.printf "cts serve: runtime events ring at %s\n%!"
                    (match obs_opts.events_dir with
                    | Some dir ->
                        Filename.concat dir (Filename.basename ring)
                    | None -> ring)
              end;
              Srv.Pool.serve pool listen_fd;
              (try Unix.close listen_fd with Unix.Unix_error _ -> ());
              (* The drain snapshot runs strictly after serve returns —
                 i.e. after every worker domain has joined — so an
                 admit racing the shutdown is either fully journaled
                 and checkpointed or was refused with 503. *)
              (match persist with
              | None -> ()
              | Some (store, _) ->
                  (match
                     Persist.Store.snapshot store
                       ~with_engine:(Srv.Cac_api.with_engine api)
                   with
                  | Ok covers ->
                      if not quiet then
                        Printf.printf
                          "cts serve: shutdown snapshot covers segment %d\n"
                          covers
                  | Error e ->
                      Printf.eprintf
                        "cts serve: shutdown snapshot failed: %s (journal \
                         remains authoritative)\n\
                         %!"
                        e);
                  Persist.Store.close store);
              (* All workers joined: retire the log sinks. *)
              (match !installed_trace with
              | Some oc ->
                  Obs.Span.set_trace_sink Obs.Sink.Null;
                  close_out_noerr oc
              | None -> ());
              (match access with
              | None -> ()
              | Some (_, cell) -> (
                  match Atomic.get cell with
                  | Obs.Sink.Jsonl oc | Obs.Sink.Text oc -> close_out_noerr oc
                  | Obs.Sink.Null -> ()));
              List.iter close_out_noerr !retired;
              let snap = Obs.Registry.snapshot () in
              let counter name =
                match
                  List.assoc_opt (name, Obs.Labels.empty)
                    snap.Obs.Registry.counters
                with
                | Some v -> v
                | None -> 0
              in
              if not quiet then
                Printf.printf
                  "cts serve: drained; %d requests on %d connections (%d \
                   shed, %d handler errors)\n"
                  (counter "srv.http.requests")
                  (counter "srv.http.connections")
                  (counter "srv.http.shed")
                  (counter "srv.http.handler_errors");
              `Ok ()))
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the admission-control engine as an HTTP daemon (Domain-parallel \
          pool; see docs/server.md)")
    Term.(
      ret
        (const run $ host_arg $ port_arg $ domains_arg $ queue_arg
       $ read_timeout_arg $ max_body_arg $ links_arg $ cache_arg
       $ max_retries_arg $ breaker_cooldown_s_arg $ state_dir_arg
       $ fsync_policy_arg $ snapshot_every_arg $ access_log_file_arg
       $ quiet_arg $ fault_term $ obs_term))

(* {2 The obs command group} *)

let obs_format_arg =
  let doc = "Output format: $(b,text), $(b,json) or $(b,prom)." in
  Arg.(
    value
    & opt metrics_format_conv Obs.Export.Prometheus
    & info [ "format" ] ~docv:"FMT" ~doc)

let obs_export_cmd =
  let run fmt =
    print_string (Obs.Export.render fmt (Obs.Registry.snapshot ()))
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Render the telemetry registry (all declared instruments, zero-valued \
          in a fresh process — mainly useful for inspecting the exposition \
          formats and instrument schema)")
    Term.(const run $ obs_format_arg)

let obs_list_cmd =
  let run () =
    let snap = Obs.Registry.snapshot () in
    Printf.printf "%-10s %s\n" "kind" "instrument";
    List.iter
      (fun (key, _) ->
        Printf.printf "%-10s %s\n" "counter" (Obs.Export.key_string key))
      snap.Obs.Registry.counters;
    List.iter
      (fun (key, _) ->
        Printf.printf "%-10s %s\n" "gauge" (Obs.Export.key_string key))
      snap.Obs.Registry.gauges;
    List.iter
      (fun (key, _) ->
        Printf.printf "%-10s %s\n" "histogram" (Obs.Export.key_string key))
      snap.Obs.Registry.histograms
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the declared telemetry instruments")
    Term.(const run $ const ())

let obs_cmd =
  Cmd.group
    (Cmd.info "obs"
       ~doc:"Telemetry: instrument schema and exposition formats")
    [ obs_export_cmd; obs_list_cmd ]

(* {2 The events command group}

   Cross-process eventring tooling: attach to the ring file of a live
   process started with --events (DIR/PID.events) and either stream
   its pauses and bridged spans as JSON lines (tail) or summarize a
   sampling window (stat). *)

let events_pid_arg =
  let doc = "Process id of the target (its ring is $(i,DIR)/$(docv).events)." in
  Arg.(required & pos 0 (some int) None & info [] ~docv:"PID" ~doc)

let events_dir_arg =
  let doc =
    "Directory holding the ring file — the target's $(b,--events-dir) \
     (default: the current directory)."
  in
  Arg.(value & pos 1 string "." & info [] ~docv:"DIR" ~doc)

(* Poll-drain-sleep until [duration] elapses (0 = until SIGINT). *)
let events_pump remote ~duration =
  let stop = Atomic.make false in
  (try
     Sys.set_signal Sys.sigint
       (Sys.Signal_handle (fun _ -> Atomic.set stop true))
   with Invalid_argument _ -> ());
  let t0 = Obs.Clock.wall () in
  let rec loop () =
    if
      Atomic.get stop
      || (duration > 0.0 && Obs.Clock.wall () -. t0 >= duration)
    then ()
    else begin
      if Obs.Events.poll remote = 0 then Unix.sleepf 0.02;
      loop ()
    end
  in
  loop ()

let events_tail_cmd =
  let duration_arg =
    let doc = "Stop after $(docv) seconds (0 = run until interrupted)." in
    Arg.(value & opt float 0.0 & info [ "duration" ] ~docv:"SECONDS" ~doc)
  in
  let run pid dir duration =
    let emit j =
      print_string (Obs.Json.to_string j);
      print_newline ()
    in
    let on_pause p = emit (Obs.Events.pause_json p) in
    let on_span ~ring ~name ~enter =
      emit
        (Obs.Json.Obj
           [
             ("kind", Obs.Json.String "span");
             ("domain", Obs.Json.Int ring);
             ("name", Obs.Json.String name);
             ("enter", Obs.Json.Bool enter);
           ])
    in
    let on_lost ring n =
      Printf.eprintf "cts events: ring %d overwrote %d unread events\n%!" ring
        n
    in
    match Obs.Events.attach ~dir ~pid ~on_pause ~on_span ~on_lost () with
    | Error msg -> `Error (false, msg)
    | Ok remote ->
        events_pump remote ~duration;
        Obs.Events.detach remote;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "tail"
       ~doc:
         "Attach to a live process's runtime-events ring and stream its GC \
          pauses (and, with --events-spans on the target, its spans) as JSON \
          lines")
    Term.(ret (const run $ events_pid_arg $ events_dir_arg $ duration_arg))

let events_stat_cmd =
  let duration_arg =
    let doc = "Length of the sampling window in seconds." in
    Arg.(value & opt float 1.0 & info [ "duration" ] ~docv:"SECONDS" ~doc)
  in
  let json_arg =
    let doc = "Print the summary as one JSON document." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run pid dir duration json =
    let pauses = ref 0
    and total_ns = ref 0L
    and max_ns = ref 0L
    and minor = ref 0
    and major = ref 0
    and other = ref 0
    and span_events = ref 0
    and lost = ref 0 in
    let per_domain : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let on_pause (p : Obs.Events.pause) =
      incr pauses;
      total_ns := Int64.add !total_ns p.Obs.Events.p_dur_ns;
      if p.Obs.Events.p_dur_ns > !max_ns then max_ns := p.Obs.Events.p_dur_ns;
      (match p.Obs.Events.p_phase with
      | Obs.Events.Minor -> incr minor
      | Obs.Events.Major -> incr major
      | Obs.Events.Other -> incr other);
      Hashtbl.replace per_domain p.Obs.Events.p_domain
        (1
        + Option.value ~default:0
            (Hashtbl.find_opt per_domain p.Obs.Events.p_domain))
    in
    let on_span ~ring:_ ~name:_ ~enter:_ = incr span_events in
    let on_lost _ring n = lost := !lost + n in
    match Obs.Events.attach ~dir ~pid ~on_pause ~on_span ~on_lost () with
    | Error msg -> `Error (false, msg)
    | Ok remote ->
        events_pump remote ~duration;
        Obs.Events.detach remote;
        let domains =
          List.sort
            (fun (a, _) (b, _) -> Int.compare a b)
            (Hashtbl.fold (fun d n acc -> (d, n) :: acc) per_domain [])
        in
        if json then
          print_endline
            (Obs.Json.to_string
               (Obs.Json.Obj
                  [
                    ("pid", Obs.Json.Int pid);
                    ("window_s", Obs.Json.Float duration);
                    ("pauses", Obs.Json.Int !pauses);
                    ("minor", Obs.Json.Int !minor);
                    ("major", Obs.Json.Int !major);
                    ("other", Obs.Json.Int !other);
                    ( "pause_ns_total",
                      Obs.Json.Int (Int64.to_int !total_ns) );
                    ("pause_ns_max", Obs.Json.Int (Int64.to_int !max_ns));
                    ("span_events", Obs.Json.Int !span_events);
                    ("lost_events", Obs.Json.Int !lost);
                    ( "domains",
                      Obs.Json.Obj
                        (List.map
                           (fun (d, n) ->
                             (string_of_int d, Obs.Json.Int n))
                           domains) );
                  ]))
        else begin
          Printf.printf "cts events stat: pid %d, %.1f s window\n" pid
            duration;
          Printf.printf "  pauses      %d (minor %d, major %d, other %d)\n"
            !pauses !minor !major !other;
          Printf.printf "  pause time  %.3f ms total, max %.1f us\n"
            (Int64.to_float !total_ns /. 1e6)
            (Int64.to_float !max_ns /. 1e3);
          Printf.printf "  span events %d\n" !span_events;
          Printf.printf "  lost        %d\n" !lost;
          if domains <> [] then
            Printf.printf "  domains     %s\n"
              (String.concat " "
                 (List.map
                    (fun (d, n) -> Printf.sprintf "%d:%d" d n)
                    domains))
        end;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "stat"
       ~doc:
         "Attach to a live process's runtime-events ring for a sampling \
          window and print a pause summary")
    Term.(
      ret
        (const run $ events_pid_arg $ events_dir_arg $ duration_arg $ json_arg))

let events_cmd =
  Cmd.group
    (Cmd.info "events"
       ~doc:
         "Cross-process GC-pause tooling over the OCaml runtime-events ring \
          (attach to a live daemon started with --events)")
    [ events_tail_cmd; events_stat_cmd ]

let main =
  let doc =
    "Reproduction of Ryu & Elwalid (SIGCOMM '96): LRD of VBR video in ATM \
     traffic engineering"
  in
  Cmd.group
    (Cmd.info "cts" ~version:"1.0.0" ~doc)
    [
      list_cmd;
      run_cmd;
      analytic_cmd;
      analyze_cmd;
      admit_cmd;
      simulate_cmd;
      cac_cmd;
      serve_cmd;
      obs_cmd;
      events_cmd;
    ]

let () = exit (Cmd.eval main)
