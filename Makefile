# Convenience targets mirroring the CI workflow.

.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 verification: what CI runs on every PR.
check:
	dune build
	dune runtest

bench:
	CTS_BENCH_ANALYTIC_ONLY=1 dune exec bench/main.exe

clean:
	dune clean
