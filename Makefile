# Convenience targets mirroring the CI workflow.

.PHONY: all build test check lint lint-typed lint-report bench clean

all: build

build:
	dune build

test:
	dune runtest

# Project static analysis (ctslint, syntactic backend): numeric
# safety and Domain-parallelism rules over lib/, bin/, bench/, test/
# and examples/.  See docs/static-analysis.md.
lint:
	dune build @lint

# Typed backend over dune's .cmt typedtrees: real float types for
# N1/N2 plus the F1/L1/E1 flow rules.  Builds @check first.
lint-typed:
	dune build @lint-typed

# Same as lint, but also leave a machine-readable report in
# ctslint-report.json and a SARIF log in ctslint.sarif.
lint-report:
	dune exec tools/ctslint/ctslint.exe -- --config .ctslint \
	  --json ctslint-report.json --sarif ctslint.sarif \
	  lib bin bench test examples

# Tier-1 verification: what CI runs on every PR.
check:
	dune build
	dune runtest

bench:
	CTS_BENCH_ANALYTIC_ONLY=1 dune exec bench/main.exe

clean:
	dune clean
