# Convenience targets mirroring the CI workflow.

.PHONY: all build test check lint lint-report bench clean

all: build

build:
	dune build

test:
	dune runtest

# Project static analysis (ctslint): numeric safety and
# Domain-parallelism rules over lib/, bin/ and bench/.
# See docs/static-analysis.md.
lint:
	dune build @lint

# Same, but also leave a machine-readable report in ctslint-report.json.
lint-report:
	dune exec tools/ctslint/ctslint.exe -- --config .ctslint \
	  --json ctslint-report.json lib bin bench

# Tier-1 verification: what CI runs on every PR.
check:
	dune build
	dune runtest

bench:
	CTS_BENCH_ANALYTIC_ONLY=1 dune exec bench/main.exe

clean:
	dune clean
